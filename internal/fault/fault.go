// Package fault is the reusable chaos harness behind the replication
// and transport test suites: scriptable fault injection at the two
// seams the system can break on — the connection (Conn/Dialer, the
// generalization of the ad-hoc tracking/truncating/fragmenting conns
// the PR 4 flaky tests grew) and the backend call boundary (Backend,
// which can kill, delay or error any replica at a scripted point).
// Production code never imports it; it lives outside the test binaries
// only so the transport, replica and serve suites can share one
// vocabulary of faults.
package fault

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/shard"
)

// ErrKilled is the error every operation on a killed Backend (or a
// dial through a killed Dialer) returns.
var ErrKilled = errors.New("fault: killed")

// Conn wraps a net.Conn with scriptable stream-level faults: Kill
// closes it out from under its owner, SetDelay stalls every Read, and
// TruncateAfter cuts the inbound stream after a byte budget —
// simulating a peer dying mid-frame. Fragment delivers one byte per
// syscall in both directions, the adversarial TCP segmentation a
// framing layer must not notice. Safe for concurrent use.
type Conn struct {
	net.Conn

	mu       sync.Mutex
	readCap  int // remaining inbound bytes; <0 = unlimited
	fragment bool
	delay    time.Duration
	// rdeadline mirrors the owner's read deadline so an armed delay
	// respects it: a stalled Read gives up when the deadline passes
	// (with the same timeout error the net stack returns) instead of
	// sleeping through it — without this, no client-side budget could
	// ever observe a stalled peer in time.
	rdeadline time.Time
}

// WrapConn returns c with no faults armed.
func WrapConn(c net.Conn) *Conn { return &Conn{Conn: c, readCap: -1} }

// Kill closes the underlying connection; every in-flight and future
// operation on it fails.
func (c *Conn) Kill() { c.Conn.Close() }

// SetDelay stalls every subsequent Read by d before touching the
// underlying connection.
func (c *Conn) SetDelay(d time.Duration) {
	c.mu.Lock()
	c.delay = d
	c.mu.Unlock()
}

// TruncateAfter cuts the inbound stream after n more bytes: reads past
// the budget return io.EOF, as if the peer died mid-frame.
func (c *Conn) TruncateAfter(n int) {
	c.mu.Lock()
	c.readCap = n
	c.mu.Unlock()
}

// Fragment makes every subsequent Read and Write deliver one byte per
// syscall.
func (c *Conn) Fragment() {
	c.mu.Lock()
	c.fragment = true
	c.mu.Unlock()
}

// SetDeadline implements net.Conn, mirroring the read half for the
// armed delay.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline implements net.Conn, mirroring it for the armed
// delay.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// Read implements net.Conn under the armed faults.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	delay, capped, budget, frag := c.delay, c.readCap >= 0, c.readCap, c.fragment
	deadline := c.rdeadline
	c.mu.Unlock()
	if delay > 0 {
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem < delay {
				// The stall outlives the owner's deadline: honor the
				// deadline, not the fault.
				if rem > 0 {
					time.Sleep(rem)
				}
				return 0, os.ErrDeadlineExceeded
			}
		}
		time.Sleep(delay)
	}
	if capped {
		if budget <= 0 {
			return 0, io.EOF
		}
		if len(p) > budget {
			p = p[:budget]
		}
	}
	if frag && len(p) > 1 {
		p = p[:1]
	}
	n, err := c.Conn.Read(p)
	if capped {
		c.mu.Lock()
		c.readCap -= n
		c.mu.Unlock()
	}
	return n, err
}

// Write implements net.Conn under the armed faults.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	frag := c.fragment
	c.mu.Unlock()
	if !frag {
		return c.Conn.Write(p)
	}
	for i := range p {
		if _, err := c.Conn.Write(p[i : i+1]); err != nil {
			return i, err
		}
	}
	return len(p), nil
}

// Dialer produces fault-wrapped connections for a transport client
// (plug Dial into transport.ClientConfig.Dial) and remembers every
// connection it handed out, so a test can kill the live ones out from
// under the pool, arm faults on future connections, or refuse dials
// entirely — while counting them. Safe for concurrent use.
type Dialer struct {
	mu       sync.Mutex
	conns    []*Conn
	dialErr  error
	truncate int // armed on each new conn; <0 = off
	fragment bool
	delay    time.Duration

	dials atomic.Int64
}

// NewDialer returns a Dialer with no faults armed.
func NewDialer() *Dialer { return &Dialer{truncate: -1} }

// Dial opens a TCP connection wrapped in the currently armed faults;
// it has the signature transport.ClientConfig.Dial expects.
func (d *Dialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	dialErr, truncate, fragment, delay := d.dialErr, d.truncate, d.fragment, d.delay
	d.mu.Unlock()
	if dialErr != nil {
		return nil, dialErr
	}
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	d.dials.Add(1)
	c := WrapConn(raw)
	if truncate >= 0 {
		c.TruncateAfter(truncate)
	}
	if fragment {
		c.Fragment()
	}
	if delay > 0 {
		c.SetDelay(delay)
	}
	d.mu.Lock()
	d.conns = append(d.conns, c)
	d.mu.Unlock()
	return c, nil
}

// Dials returns how many connections were successfully opened.
func (d *Dialer) Dials() int64 { return d.dials.Load() }

// KillAll closes every connection handed out so far.
func (d *Dialer) KillAll() {
	d.mu.Lock()
	conns := d.conns
	d.mu.Unlock()
	for _, c := range conns {
		c.Kill()
	}
}

// TruncateAll cuts the inbound stream of every *live* connection
// after n more bytes — the peer dying mid-response on the pooled
// connections a client is holding right now.
func (d *Dialer) TruncateAll(n int) {
	d.mu.Lock()
	conns := d.conns
	d.mu.Unlock()
	for _, c := range conns {
		c.TruncateAfter(n)
	}
}

// RefuseDials makes every future Dial fail with ErrKilled (the
// server's address black-holed); AllowDials undoes it.
func (d *Dialer) RefuseDials() {
	d.mu.Lock()
	d.dialErr = ErrKilled
	d.mu.Unlock()
}

// AllowDials re-enables dialing after RefuseDials.
func (d *Dialer) AllowDials() {
	d.mu.Lock()
	d.dialErr = nil
	d.mu.Unlock()
}

// TruncateNext arms every future connection to cut its inbound stream
// after n bytes (pass a negative n to disarm).
func (d *Dialer) TruncateNext(n int) {
	d.mu.Lock()
	d.truncate = n
	d.mu.Unlock()
}

// StallAll stalls every Read of every live connection by delay, and
// arms every future connection the same way (0 disarms). A stalled
// read still honors its deadline — it fails with a timeout error when
// the deadline lands inside the stall — so this is the wire-level
// shape of a hung server under a client budget.
func (d *Dialer) StallAll(delay time.Duration) {
	d.mu.Lock()
	d.delay = delay
	conns := append([]*Conn(nil), d.conns...)
	d.mu.Unlock()
	for _, c := range conns {
		c.SetDelay(delay)
	}
}

// FragmentAll arms every future connection to deliver one byte per
// syscall in both directions.
func (d *Dialer) FragmentAll() {
	d.mu.Lock()
	d.fragment = true
	d.mu.Unlock()
}

// Backend wraps a shard.Backend with scriptable call-boundary faults:
// Kill fails every future call while calls already past the gate run
// to completion against the healthy inner backend (drain semantics —
// a view handed out before the kill still answers its stats fetch),
// KillAfterCalls arms the kill at an exact future call count for
// deterministic mid-load injection, SetDelay stalls every call, and
// Heal clears the kill. Per-op counters record what reached the gate,
// so a test can pin not just results but traffic — e.g. that a read
// failover never re-sent a write. Safe for concurrent use.
type Backend struct {
	inner shard.Backend

	killed    atomic.Bool
	killAfter atomic.Int64 // fail calls once Calls() passes this; <=0 = disarmed
	delay     atomic.Int64 // per-call stall in nanoseconds

	calls                        atomic.Int64 // every call that reached the gate
	searches, ingests            atomic.Int64 // calls that passed the gate
	epochs, quiesces             atomic.Int64
	searchesKilled, ingestKilled atomic.Int64 // calls refused by the gate
}

// Backend must be able to stand in for any replica.
var _ shard.Backend = (*Backend)(nil)

// Wrap returns b behind a fault gate with no faults armed.
func Wrap(b shard.Backend) *Backend { return &Backend{inner: b} }

// Inner returns the wrapped backend.
func (f *Backend) Inner() shard.Backend { return f.inner }

// Kill makes every future call fail with ErrKilled; calls already in
// flight (and views already handed out) complete against the inner
// backend.
func (f *Backend) Kill() { f.killed.Store(true) }

// Heal clears Kill and any armed KillAfterCalls.
func (f *Backend) Heal() {
	f.killed.Store(false)
	f.killAfter.Store(0)
}

// KillAfterCalls arms the gate to start failing once n more calls
// have been admitted — the scripted point for deterministic mid-load
// faults.
func (f *Backend) KillAfterCalls(n int) {
	f.killAfter.Store(f.calls.Load() + int64(n))
}

// SetDelay stalls every subsequent call by d before it reaches the
// inner backend.
func (f *Backend) SetDelay(d time.Duration) { f.delay.Store(int64(d)) }

// Calls returns how many calls reached the gate (admitted or not).
func (f *Backend) Calls() int64 { return f.calls.Load() }

// Searches returns how many Search calls passed the gate.
func (f *Backend) Searches() int64 { return f.searches.Load() }

// SearchesKilled returns how many Search calls the gate refused.
func (f *Backend) SearchesKilled() int64 { return f.searchesKilled.Load() }

// Ingests returns how many Ingest/IngestBatch calls passed the gate.
func (f *Backend) Ingests() int64 { return f.ingests.Load() }

// IngestsKilled returns how many Ingest/IngestBatch calls the gate
// refused.
func (f *Backend) IngestsKilled() int64 { return f.ingestKilled.Load() }

// gate admits or refuses one call (no caller deadline to honor).
func (f *Backend) gate() error { return f.gateCtx(context.Background()) }

// gateCtx admits or refuses one call, honoring the caller's context
// while an armed delay stalls it.
func (f *Backend) gateCtx(ctx context.Context) error {
	n := f.calls.Add(1)
	if d := f.delay.Load(); d > 0 {
		t := time.NewTimer(time.Duration(d))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if ka := f.killAfter.Load(); ka > 0 && n > ka {
		f.killed.Store(true)
	}
	if f.killed.Load() {
		return ErrKilled
	}
	return nil
}

// Search implements shard.Backend through the fault gate. An armed
// delay stalls it, but the caller's deadline still wins — the stall
// resolves to ctx.Err() the moment the budget runs out.
func (f *Backend) Search(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate) ([]expertise.RawCandidate, int, shard.View, error) {
	if err := f.gateCtx(ctx); err != nil {
		f.searchesKilled.Add(1)
		return raw[:0], 0, nil, err
	}
	f.searches.Add(1)
	return f.inner.Search(ctx, terms, extended, raw)
}

// Ingest implements shard.Backend through the fault gate.
func (f *Backend) Ingest(p microblog.Post) (microblog.TweetID, error) {
	if err := f.gate(); err != nil {
		f.ingestKilled.Add(1)
		return 0, err
	}
	f.ingests.Add(1)
	return f.inner.Ingest(p)
}

// IngestBatch implements shard.Backend through the fault gate.
func (f *Backend) IngestBatch(posts []microblog.Post) error {
	if err := f.gate(); err != nil {
		f.ingestKilled.Add(1)
		return err
	}
	f.ingests.Add(1)
	return f.inner.IngestBatch(posts)
}

// Epoch implements shard.Backend through the fault gate.
func (f *Backend) Epoch() (uint64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	f.epochs.Add(1)
	return f.inner.Epoch()
}

// Quiesce implements shard.Backend through the fault gate.
func (f *Backend) Quiesce() error {
	if err := f.gate(); err != nil {
		return err
	}
	f.quiesces.Add(1)
	return f.inner.Quiesce()
}

// Close implements shard.Backend; it always reaches the inner backend
// (a test tearing down must not leak compactors behind a kill).
func (f *Backend) Close() error { return f.inner.Close() }
