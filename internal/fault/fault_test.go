package fault

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/world"
)

// echoServer accepts loopback connections and echoes every byte back,
// returning the listen address.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(conn, conn)
		}
	}()
	return ln.Addr().String()
}

func roundTrip(t *testing.T, c net.Conn, msg string) (string, error) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	n, err := io.ReadFull(c, buf)
	return string(buf[:n]), err
}

func TestConnEchoAndFragment(t *testing.T) {
	addr := echoServer(t)
	d := NewDialer()
	d.FragmentAll()
	conn, err := d.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One byte per syscall in both directions; the payload must still
	// arrive intact.
	if got, err := roundTrip(t, conn, "hello fragmented world"); err != nil || got != "hello fragmented world" {
		t.Fatalf("fragmented echo = %q, %v", got, err)
	}
	if d.Dials() != 1 {
		t.Fatalf("Dials = %d, want 1", d.Dials())
	}
}

func TestConnTruncate(t *testing.T) {
	addr := echoServer(t)
	d := NewDialer()
	d.TruncateNext(4)
	conn, err := d.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The inbound stream dies after 4 bytes, as if the peer crashed
	// mid-frame.
	got, err := roundTrip(t, conn, "0123456789")
	if got != "0123" || !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read = %q, %v; want \"0123\" + EOF", got, err)
	}
	d.TruncateNext(-1) // disarm: the next conn reads freely
	conn2, err := d.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if got, err := roundTrip(t, conn2, "0123456789"); err != nil || got != "0123456789" {
		t.Fatalf("disarmed echo = %q, %v", got, err)
	}
	// TruncateAll cuts the live connection too.
	d.TruncateAll(0)
	if _, err := roundTrip(t, conn2, "x"); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("TruncateAll(0) read err = %v, want EOF", err)
	}
}

// TestConnStallHonorsDeadline pins the contract the gateway's 504 path
// stands on: a stalled read with a nearer deadline fails with the
// net-stack timeout error at the deadline, not after the stall.
func TestConnStallHonorsDeadline(t *testing.T) {
	addr := echoServer(t)
	d := NewDialer()
	conn, err := d.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d.StallAll(10 * time.Second)
	if err := conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = roundTrip(t, conn, "ping")
	elapsed := time.Since(start)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v, want deadline exceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("stalled read took %v, want ~50ms deadline", elapsed)
	}
	// Disarm and clear the deadline: the wire heals. The echo of the
	// timed-out "ping" is still in flight — it arrives first.
	d.StallAll(0)
	if err := conn.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	stale := make([]byte, 4)
	if _, err := io.ReadFull(conn, stale); err != nil || string(stale) != "ping" {
		t.Fatalf("leftover echo = %q, %v", stale, err)
	}
	if got, err := roundTrip(t, conn, "pong"); err != nil || got != "pong" {
		t.Fatalf("healed echo = %q, %v", got, err)
	}
}

func TestDialerKillAndRefuse(t *testing.T) {
	addr := echoServer(t)
	d := NewDialer()
	conn, err := d.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d.KillAll()
	if _, err := roundTrip(t, conn, "dead"); err == nil {
		t.Fatal("killed conn still echoes")
	}
	d.RefuseDials()
	if _, err := d.Dial(addr, time.Second); !errors.Is(err, ErrKilled) {
		t.Fatalf("refused dial err = %v, want ErrKilled", err)
	}
	d.AllowDials()
	conn2, err := d.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after AllowDials: %v", err)
	}
	conn2.Close()
}

// innerBackend is a minimal healthy shard.Backend recording nothing.
type innerBackend struct{ epoch uint64 }

func (b *innerBackend) Search(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate) ([]expertise.RawCandidate, int, shard.View, error) {
	return raw[:0], 0, nopView{}, nil
}
func (b *innerBackend) Ingest(p microblog.Post) (microblog.TweetID, error) {
	b.epoch++
	return microblog.TweetID(b.epoch), nil
}
func (b *innerBackend) IngestBatch(posts []microblog.Post) error { b.epoch++; return nil }
func (b *innerBackend) Epoch() (uint64, error)                   { return b.epoch, nil }
func (b *innerBackend) Quiesce() error                           { return nil }
func (b *innerBackend) Close() error                             { return nil }

type nopView struct{}

func (nopView) Stats(ctx context.Context, users []world.UserID, dst []expertise.UserStats) ([]expertise.UserStats, error) {
	return dst[:0], nil
}
func (nopView) Release() {}

func TestBackendGate(t *testing.T) {
	f := Wrap(&innerBackend{})
	defer f.Close()
	if f.Inner() == nil {
		t.Fatal("Inner lost the wrapped backend")
	}

	// Healthy: everything passes and is counted per op.
	if _, _, v, err := f.Search(context.Background(), []string{"a"}, false, nil); err != nil {
		t.Fatal(err)
	} else {
		v.Release()
	}
	if _, err := f.Ingest(microblog.Post{}); err != nil {
		t.Fatal(err)
	}
	if err := f.IngestBatch(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Epoch(); err != nil {
		t.Fatal(err)
	}
	if err := f.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if f.Calls() != 5 || f.Searches() != 1 || f.Ingests() != 2 {
		t.Fatalf("counters: calls %d searches %d ingests %d", f.Calls(), f.Searches(), f.Ingests())
	}

	// Killed: every op is refused with ErrKilled and the refusals are
	// counted on the read/write split.
	f.Kill()
	if _, _, _, err := f.Search(context.Background(), []string{"a"}, false, nil); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed Search err = %v", err)
	}
	if _, err := f.Ingest(microblog.Post{}); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed Ingest err = %v", err)
	}
	if err := f.IngestBatch(nil); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed IngestBatch err = %v", err)
	}
	if _, err := f.Epoch(); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed Epoch err = %v", err)
	}
	if err := f.Quiesce(); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed Quiesce err = %v", err)
	}
	if f.SearchesKilled() != 1 || f.IngestsKilled() != 2 {
		t.Fatalf("kill counters: searches %d ingests %d", f.SearchesKilled(), f.IngestsKilled())
	}
	f.Heal()
	if err := f.Quiesce(); err != nil {
		t.Fatalf("healed Quiesce err = %v", err)
	}
}

func TestBackendKillAfterCalls(t *testing.T) {
	f := Wrap(&innerBackend{})
	defer f.Close()
	f.KillAfterCalls(2)
	for i := 0; i < 2; i++ {
		if _, err := f.Epoch(); err != nil {
			t.Fatalf("call %d refused early: %v", i, err)
		}
	}
	if _, err := f.Epoch(); !errors.Is(err, ErrKilled) {
		t.Fatalf("armed kill did not fire: %v", err)
	}
}

// TestBackendDelayHonorsContext mirrors the wire-stall contract at the
// call boundary: an armed delay resolves to ctx.Err() the moment the
// caller's budget runs out.
func TestBackendDelayHonorsContext(t *testing.T) {
	f := Wrap(&innerBackend{})
	defer f.Close()
	f.SetDelay(10 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, _, err := f.Search(ctx, []string{"a"}, false, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled Search err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stalled Search took %v, want ~50ms budget", elapsed)
	}
	f.SetDelay(0)
	if _, _, v, err := f.Search(context.Background(), []string{"a"}, false, nil); err != nil {
		t.Fatalf("healed Search err = %v", err)
	} else {
		v.Release()
	}
}
