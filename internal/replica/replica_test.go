// The replication test suite: the equivalence spine extended one more
// step (a quiesced replicated cluster must rank bit-identically to the
// in-process Router and a cold rebuild — including after a replica is
// killed mid-load), plus the chaos-style contracts: reads fail over
// and never duplicate writes, stale followers are rejected from the
// read set, and a dead replica costs one probe per backoff window.
package replica_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/transport"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeSets []eval.QuerySet
	pipeErr  error
)

func testPipeline(t testing.TB) (*core.Pipeline, []eval.QuerySet) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
		if pipeErr == nil {
			pipeSets = eval.BuildQuerySets(pipe.World, pipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, pipeSets
}

func streamPosts(p *core.Pipeline, seed uint64, n int) []microblog.Post {
	s := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(seed))
	posts := make([]microblog.Post, n)
	for i := range posts {
		posts[i] = s.Next()
	}
	return posts
}

func expertsIdentical(t *testing.T, label, query string, got, want []expertise.Expert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d results, reference has %d", label, query, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %q rank %d:\n  got  %+v\n  want %+v", label, query, i, got[i], want[i])
		}
	}
}

// replCluster is one replicated deployment under test: n shards × r
// replicas, with handles into every layer the assertions need.
type replCluster struct {
	cluster   *shard.Cluster
	sets      []*replica.Set
	primaries []*ingest.Index
	// followers[i][j] is shard i's (j+1)-th replica's index — the
	// content handle behind local followers and remote ones alike.
	followers [][]*ingest.Index
	// servers[i][j] serves followers[i][j] when the follower is
	// remote; nil rows for local followers.
	servers [][]*transport.ShardServer
	// faults[i] wraps shard i's first follower when fault-wrapping was
	// requested; nil otherwise.
	faults []*fault.Backend
}

// ingested walks every primary's snapshot and returns the posts
// ingested beyond the base — the cold-rebuild feed. Writes land on
// every replica, but the primary is the durability contract, so the
// rebuild reads it.
func (rc *replCluster) ingested() []microblog.Tweet {
	var all []microblog.Tweet
	for _, idx := range rc.primaries {
		snap := idx.Snapshot()
		for gid := idx.Base().NumTweets(); gid < snap.NumTweets(); gid++ {
			all = append(all, *snap.Tweet(microblog.TweetID(gid)))
		}
	}
	return all
}

// newReplicated builds an n-shard × r-replica cluster. Each shard's
// primary is a local index over its base partition; followers are
// local too, or served over loopback TCP when remoteFollowers is set
// (primary local, followers remote — the deployment shape where the
// coordinator co-locates one replica and fans reads to the rest).
// When wrapFollowers is set, each shard's first follower sits behind
// a fault.Backend gate.
func newReplicated(t testing.TB, p *core.Pipeline, n, r int, icfg ingest.Config,
	cfg replica.Config, remoteFollowers, wrapFollowers bool) *replCluster {
	t.Helper()
	rc := &replCluster{
		sets:      make([]*replica.Set, n),
		primaries: make([]*ingest.Index, n),
		followers: make([][]*ingest.Index, n),
		servers:   make([][]*transport.ShardServer, n),
		faults:    make([]*fault.Backend, n),
	}
	backends := make([]shard.Backend, n)
	for i := 0; i < n; i++ {
		part := shard.Partition(p.Corpus, i, n)
		primary := ingest.New(part, icfg)
		rc.primaries[i] = primary
		members := []shard.Backend{shard.NewLocal(primary)}
		for j := 1; j < r; j++ {
			fidx := ingest.New(part, icfg)
			rc.followers[i] = append(rc.followers[i], fidx)
			var member shard.Backend
			if remoteFollowers {
				srv, err := transport.Listen("127.0.0.1:0", fidx, transport.DefaultServerConfig(i, n))
				if err != nil {
					t.Fatal(err)
				}
				rc.servers[i] = append(rc.servers[i], srv)
				t.Cleanup(func() { srv.Close() })
				reps, err := transport.DialReplicas([]string{srv.Addr().String()},
					i, n, len(p.World.Users), part.NumTweets(),
					transport.ClientConfig{Timeout: 10 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				member = reps[0]
			} else {
				member = shard.NewLocal(fidx)
			}
			if wrapFollowers && j == 1 {
				f := fault.Wrap(member)
				rc.faults[i] = f
				member = f
			}
			members = append(members, member)
		}
		set, err := replica.NewSet(members, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rc.sets[i] = set
		backends[i] = set
	}
	rc.cluster = shard.NewCluster(p.World, backends...)
	t.Cleanup(func() { rc.cluster.Close() })
	return rc
}

// TestReplicatedQuiescedEquivalence is the acceptance bar of the
// replication layer: for (N,R) ∈ {(1,2),(2,2),(2,3)} — followers
// behind loopback TCP — after replicating the same posts and
// quiescing, the replicated scatter-gather detector must return
// bit-identical ranked experts and matched-tweet counts to the
// in-process Router and to a cold detector rebuilt over the same
// posts, for every query of every evaluation query set, on both the
// e# and the baseline path, with zero partial results; and the read
// fan-out must actually spread load across the replicas.
func TestReplicatedQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 81, 400)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}

	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	for _, tc := range []struct{ n, r int }{{1, 2}, {2, 2}, {2, 3}} {
		// In-process single-copy reference over the identical partitioning.
		router := shard.New(p.Corpus, shard.Config{Shards: tc.n, Ingest: icfg})
		router.IngestBatch(posts)
		router.Quiesce()
		local := core.NewShardedLiveDetector(p.Collection, router, p.Cfg.Online)

		rc := newReplicated(t, p, tc.n, tc.r, icfg, replica.DefaultConfig(), true, false)
		if err := rc.cluster.IngestBatch(posts); err != nil {
			t.Fatal(err)
		}
		if err := rc.cluster.Quiesce(); err != nil {
			t.Fatal(err)
		}
		repl := core.NewShardedLiveDetectorOver(p.Collection, rc.cluster, p.Cfg.Online)

		total := 0
		for _, set := range sets {
			for _, q := range set.Queries {
				total++
				gotES, gotTrace := repl.Search(q)
				wantES, wantTrace := local.Search(q)
				coldES, coldTrace := cold.Search(q)
				expertsIdentical(t, "replicated-vs-local", q, gotES, wantES)
				expertsIdentical(t, "replicated-vs-cold", q, gotES, coldES)
				if gotTrace.MatchedTweets != wantTrace.MatchedTweets ||
					gotTrace.MatchedTweets != coldTrace.MatchedTweets {
					t.Fatalf("N=%d R=%d %q: matched %d tweets replicated, local %d, cold %d",
						tc.n, tc.r, q, gotTrace.MatchedTweets, wantTrace.MatchedTweets, coldTrace.MatchedTweets)
				}
				expertsIdentical(t, "replicated-baseline", q,
					repl.SearchBaseline(q), local.SearchBaseline(q))
			}
		}
		if total == 0 {
			t.Fatal("no queries in eval sets")
		}
		if pq, se := repl.PartialStats(); pq != 0 || se != 0 {
			t.Fatalf("N=%d R=%d: healthy replicated cluster reported partial queries %d, shard errors %d",
				tc.n, tc.r, pq, se)
		}
		if fo := repl.Failovers(); fo != 0 {
			t.Fatalf("N=%d R=%d: healthy replicated cluster reported %d failovers", tc.n, tc.r, fo)
		}
		for si, set := range rc.sets {
			st := set.Stats()
			if st.Epoch != uint64(len(posts)) && tc.n == 1 {
				t.Fatalf("set %d logical epoch %d, want %d", si, st.Epoch, len(posts))
			}
			for j := 0; j < tc.r; j++ {
				if st.Applied[j] != st.Epoch {
					t.Fatalf("N=%d R=%d shard %d replica %d applied %d of %d writes",
						tc.n, tc.r, si, j, st.Applied[j], st.Epoch)
				}
				if st.Reads[j] == 0 {
					t.Fatalf("N=%d R=%d shard %d replica %d served no reads — the fan-out is not spreading",
						tc.n, tc.r, si, j)
				}
			}
		}
		router.Close()
	}
}

// TestReplicatedEquivalenceAfterFollowerKill is the fault half of the
// acceptance bar: one follower per shard is killed mid-load (its
// server closes under the client), the remaining writes replicate to
// the survivors, reads fail over — zero partial results — and the
// quiesced cluster still ranks bit-identically to a cold rebuild over
// every evaluation query.
func TestReplicatedEquivalenceAfterFollowerKill(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 83, 300)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	const n, r = 2, 2

	rc := newReplicated(t, p, n, r, icfg, replica.DefaultConfig(), true, false)
	if err := rc.cluster.IngestBatch(posts[:150]); err != nil {
		t.Fatal(err)
	}
	// Kill every shard's follower server mid-load: in-flight state dies
	// with the TCP connections, and every later replication write to it
	// must fail (and must not be retried).
	for i := 0; i < n; i++ {
		for _, srv := range rc.servers[i] {
			srv.Close()
		}
	}
	if err := rc.cluster.IngestBatch(posts[150:]); err != nil {
		t.Fatal(err)
	}
	if err := rc.cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}
	repl := core.NewShardedLiveDetectorOver(p.Collection, rc.cluster, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	for _, set := range sets {
		for _, q := range set.Queries {
			got, gotTrace := repl.Search(q)
			want, wantTrace := cold.Search(q)
			expertsIdentical(t, "killed-follower-vs-cold", q, got, want)
			if gotTrace.MatchedTweets != wantTrace.MatchedTweets {
				t.Fatalf("%q: matched %d tweets with a killed follower, cold %d",
					q, gotTrace.MatchedTweets, wantTrace.MatchedTweets)
			}
		}
	}
	// Failover, not degradation: every query answered whole.
	if pq, se := repl.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("killed follower degraded queries: partial %d, shard errors %d", pq, se)
	}
	for si, set := range rc.sets {
		st := set.Stats()
		if !st.Stale[1] {
			t.Fatalf("shard %d follower missed writes but is not flagged stale: %+v", si, st)
		}
		if st.Applied[0] != st.Epoch {
			t.Fatalf("shard %d primary applied %d of %d writes", si, st.Applied[0], st.Epoch)
		}
	}
}

// TestFailoverReadsNeverDuplicateWrites pins two halves of the write
// contract around a read failover: (a) reads failing over to the
// primary never re-send — or send at all — any write to the failed
// follower, and (b) a healed follower that missed no writes is
// re-admitted to the read rotation by one successful probe after its
// backoff window (the decaying-backoff recovery path).
func TestFailoverReadsNeverDuplicateWrites(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	cfg := replica.Config{Backoff: shard.Backoff{Initial: 50 * time.Millisecond, Max: 50 * time.Millisecond}}
	rc := newReplicated(t, p, 1, 2, icfg, cfg, false, true)
	set, f := rc.sets[0], rc.faults[0]

	posts := streamPosts(p, 91, 60)
	for _, post := range posts {
		if _, err := rc.cluster.Ingest(post); err != nil {
			t.Fatal(err)
		}
	}
	writesBefore := f.Ingests()
	if writesBefore == 0 {
		t.Fatal("follower received no replicated writes while healthy")
	}

	// Reference results over the identical content, computed before the
	// kill so every failover read can be checked against them.
	det := core.NewShardedLiveDetectorOver(p.Collection, rc.cluster, p.Cfg.Online)
	if err := rc.cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}
	queries := []string{"49ers", "nfl", "diabetes", "coffee"}
	want := make(map[string][]expertise.Expert, len(queries))
	for _, q := range queries {
		want[q], _ = det.Search(q)
	}

	f.Kill()
	for round := 0; round < 8; round++ {
		for _, q := range queries {
			got, _ := det.Search(q)
			expertsIdentical(t, "failover-read", q, got, want[q])
		}
	}
	if pq, se := det.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("reads degraded instead of failing over: partial %d, errors %d", pq, se)
	}
	if fo := det.Failovers(); fo == 0 {
		t.Fatal("no failover was counted although the follower is dead")
	}
	// The load-bearing pin: the read failovers sent the dead follower
	// zero writes — the write path and the read failover machinery are
	// disjoint, so a failover can never duplicate (or originate) a post.
	if f.Ingests() != writesBefore || f.IngestsKilled() != 0 {
		t.Fatalf("read failovers touched the write path: %d→%d writes, %d refused",
			writesBefore, f.Ingests(), f.IngestsKilled())
	}
	// And the dead follower costs at most one probe per backoff window:
	// 32 reads above, two windows at most while killed.
	if probes := f.SearchesKilled(); probes > 3 {
		t.Fatalf("dead follower was probed %d times during backoff — reads are paying per-request again", probes)
	}

	// Heal: the follower missed no writes (none happened while it was
	// down), so one successful probe after the window re-admits it.
	f.Heal()
	time.Sleep(60 * time.Millisecond)
	readsBefore := set.Stats().Reads[1]
	for round := 0; round < 6; round++ {
		for _, q := range queries {
			got, _ := det.Search(q)
			expertsIdentical(t, "healed-read", q, got, want[q])
		}
	}
	if readsAfter := set.Stats().Reads[1]; readsAfter <= readsBefore {
		t.Fatalf("healed follower served no reads (%d before, %d after) — backoff never decayed",
			readsBefore, readsAfter)
	}
	if st := set.Stats(); st.Stale[1] {
		t.Fatalf("follower with no missed writes is flagged stale: %+v", st)
	}
}

// TestStaleFollowerRejected pins epoch-gap rejection: a follower that
// missed one write while down is ejected from the read set even after
// its transport heals — reads route to the primary, never to the gap.
func TestStaleFollowerRejected(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	cfg := replica.Config{Backoff: shard.Backoff{Initial: 10 * time.Millisecond, Max: 10 * time.Millisecond}}
	rc := newReplicated(t, p, 1, 2, icfg, cfg, false, true)
	set, f := rc.sets[0], rc.faults[0]

	for _, post := range streamPosts(p, 95, 20) {
		if _, err := rc.cluster.Ingest(post); err != nil {
			t.Fatal(err)
		}
	}
	f.Kill()
	missed := streamPosts(p, 96, 1)[0]
	if _, err := rc.cluster.Ingest(missed); err != nil {
		t.Fatal(err)
	}
	if st := set.Stats(); !st.Stale[1] || st.Applied[1] != st.Epoch-1 {
		t.Fatalf("follower not ejected after missing a write: %+v", st)
	}
	// The transport heals and every backoff window expires — but the
	// gap is forever, so reads must keep routing to the primary.
	f.Heal()
	time.Sleep(20 * time.Millisecond)

	det := core.NewShardedLiveDetectorOver(p.Collection, rc.cluster, p.Cfg.Online)
	rc.cluster.Quiesce()
	cold := core.NewDetector(p.Collection,
		p.Corpus.ExtendedWith(append(streamPosts(p, 95, 20), missed)), p.Cfg.Online)
	searchesBefore := f.Searches()
	for i := 0; i < 10; i++ {
		got, _ := det.Search("49ers")
		want, _ := cold.Search("49ers")
		expertsIdentical(t, "stale-rejected", "49ers", got, want)
	}
	if f.Searches() != searchesBefore {
		t.Fatalf("stale follower served %d reads — the epoch gap was ignored",
			f.Searches()-searchesBefore)
	}
	if st := set.Stats(); st.Reads[1] != 0 {
		t.Fatalf("stale follower counted %d served reads", st.Reads[1])
	}
	// New writes skip the stale follower too: its content must stay a
	// clean prefix rather than grow holes.
	ingestsBefore := f.Ingests() + f.IngestsKilled()
	for _, post := range streamPosts(p, 97, 5) {
		if _, err := rc.cluster.Ingest(post); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Ingests() + f.IngestsKilled(); got != ingestsBefore {
		t.Fatalf("stale follower was sent %d more writes — its content now has holes", got-ingestsBefore)
	}
}

// TestReplicationWriteNotRetriedOnTruncation pins exactly-once at the
// wire: a replication write whose *response* is cut mid-frame (the
// follower applied the post; the client cannot know) must surface as
// a failed replication — the follower is ejected — and must never be
// re-sent, because a blind retry would double the post and skew every
// counter the bit-identical bar is stated over.
func TestReplicationWriteNotRetriedOnTruncation(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	part := shard.Partition(p.Corpus, 0, 1)

	primary := ingest.New(part, icfg)
	fidx := ingest.New(part, icfg)
	srv, err := transport.Listen("127.0.0.1:0", fidx, transport.DefaultServerConfig(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	d := fault.NewDialer()
	ccfg := transport.ClientConfig{Timeout: 2 * time.Second, Dial: d.Dial}
	follower := transport.NewRemoteShard(srv.Addr().String(), ccfg)
	if err := follower.Handshake(0, 1, len(p.World.Users), part.NumTweets()); err != nil {
		t.Fatal(err)
	}
	set, err := replica.NewSet([]shard.Backend{shard.NewLocal(primary), follower}, replica.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })

	warm := streamPosts(p, 101, 10)
	for _, post := range warm {
		if _, err := set.Ingest(post); err != nil {
			t.Fatal(err)
		}
	}
	baseCount := part.NumTweets()
	fidx.Quiesce()
	if got := fidx.Snapshot().NumTweets(); got != baseCount+len(warm) {
		t.Fatalf("follower holds %d tweets before the fault, want %d", got, baseCount+len(warm))
	}

	// Cut the response stream of every pooled connection: the next
	// replication request reaches the server (writes are unaffected),
	// the server applies it, and the client's read of the response hits
	// EOF.
	d.TruncateAll(0)
	victim := streamPosts(p, 102, 1)[0]
	if _, err := set.Ingest(victim); err != nil {
		t.Fatalf("a follower fault must not fail the write (primary applied it): %v", err)
	}
	st := set.Stats()
	if !st.Stale[1] {
		t.Fatalf("follower not ejected after a lost replication response: %+v", st)
	}
	// Exactly once: the follower applied the victim post a single time —
	// a silent retry would have doubled it. The client saw EOF before
	// the server goroutine finished applying, so poll briefly for the
	// count to settle (and then hold still).
	want := baseCount + len(warm) + 1
	deadline := time.Now().Add(2 * time.Second)
	for fidx.Snapshot().NumTweets() < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	fidx.Quiesce()
	if got := fidx.Snapshot().NumTweets(); got != want {
		t.Fatalf("follower holds %d tweets after the truncated write, want %d (applied exactly once)", got, want)
	}
	primary.Quiesce()
	if got, want := primary.Snapshot().NumTweets(), baseCount+len(warm)+1; got != want {
		t.Fatalf("primary holds %d tweets, want %d", got, want)
	}
}

// TestAmbiguousPrimaryWriteFailsSafe pins the primary-side half of
// the divergence story: a primary write whose *response* is lost is
// ambiguous — the primary may hold the post — so the Set must presume
// it does: the logical epoch advances (cache entries from before the
// suspect write invalidate), every follower is ejected, and once the
// primary's backoff lapses, reads serve exactly the primary's content
// — which does include the post — bit-identical to a cold rebuild.
func TestAmbiguousPrimaryWriteFailsSafe(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	part := shard.Partition(p.Corpus, 0, 1)

	pidx := ingest.New(part, icfg)
	srv, err := transport.Listen("127.0.0.1:0", pidx, transport.DefaultServerConfig(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	d := fault.NewDialer()
	primary := transport.NewRemoteShard(srv.Addr().String(),
		transport.ClientConfig{Timeout: 2 * time.Second, Dial: d.Dial})
	if err := primary.Handshake(0, 1, len(p.World.Users), part.NumTweets()); err != nil {
		t.Fatal(err)
	}
	fidx := ingest.New(part, icfg)
	set, err := replica.NewSet([]shard.Backend{primary, shard.NewLocal(fidx)},
		replica.Config{Backoff: shard.Backoff{Initial: 20 * time.Millisecond, Max: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })

	warm := streamPosts(p, 113, 10)
	for _, post := range warm {
		if _, err := set.Ingest(post); err != nil {
			t.Fatal(err)
		}
	}

	// The suspect write: request reaches the server, the response dies.
	d.TruncateAll(0)
	victim := streamPosts(p, 114, 1)[0]
	if _, err := set.Ingest(victim); err == nil {
		t.Fatal("write with a lost response reported success")
	}
	st := set.Stats()
	if st.Epoch != uint64(len(warm)+1) {
		t.Fatalf("suspect write did not advance the logical epoch: %+v", st)
	}
	if st.Applied[0] != st.Epoch || !st.Stale[1] {
		t.Fatalf("suspect write must presume the primary applied it and eject the follower: %+v", st)
	}

	// The primary did apply it; once its backoff lapses, reads serve
	// the primary's post-write content, bit-identical to a cold rebuild
	// that includes the victim.
	wantTweets := part.NumTweets() + len(warm) + 1
	deadline := time.Now().Add(2 * time.Second)
	for pidx.Snapshot().NumTweets() < wantTweets && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := pidx.Snapshot().NumTweets(); got != wantTweets {
		t.Fatalf("primary holds %d tweets, want %d", got, wantTweets)
	}
	time.Sleep(30 * time.Millisecond) // let the primary's backoff window lapse
	cluster := shard.NewCluster(p.World, set)
	det := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)
	if err := set.Quiesce(); err != nil {
		t.Fatal(err)
	}
	cold := core.NewDetector(p.Collection,
		p.Corpus.ExtendedWith(append(warm, victim)), p.Cfg.Online)
	followerReads := set.Stats().Reads[1]
	for i := 0; i < 6; i++ {
		got, _ := det.Search("49ers")
		want, _ := cold.Search("49ers")
		expertsIdentical(t, "suspect-primary", "49ers", got, want)
	}
	if pq, se := det.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("reads degraded: partial %d, errors %d", pq, se)
	}
	if got := set.Stats().Reads[1]; got != followerReads {
		t.Fatalf("ejected follower served %d reads after a suspect primary write", got-followerReads)
	}
}

// TestSetBasics covers the plain-backend face of a Set: construction
// rules, single-replica passthrough, the logical epoch counting
// writes, and batch splitting.
func TestSetBasics(t *testing.T) {
	p, _ := testPipeline(t)
	if _, err := replica.NewSet(nil, replica.DefaultConfig()); err == nil {
		t.Fatal("empty set constructed")
	}
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	idx := ingest.New(shard.Partition(p.Corpus, 0, 1), icfg)
	set, err := replica.NewSet([]shard.Backend{shard.NewLocal(idx)}, replica.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.NumReplicas() != 1 || set.Primary() != set.Replica(0) {
		t.Fatal("single-replica set wiring broken")
	}
	if !set.EpochIsLocal() {
		t.Fatal("a set's epoch must be a local read")
	}
	if e, err := set.Epoch(); err != nil || e != 0 {
		t.Fatalf("fresh set epoch %d err %v", e, err)
	}
	posts := streamPosts(p, 104, 7)
	if _, err := set.Ingest(posts[0]); err != nil {
		t.Fatal(err)
	}
	if err := set.IngestBatch(posts[1:]); err != nil {
		t.Fatal(err)
	}
	if err := set.IngestBatch(nil); err != nil {
		t.Fatal(err)
	}
	if e, _ := set.Epoch(); e != uint64(len(posts)) {
		t.Fatalf("logical epoch %d after %d writes", e, len(posts))
	}
	if err := set.Quiesce(); err != nil {
		t.Fatal(err)
	}
	rows, matched, v, err := set.Search(context.Background(), []string{"49ers"}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if matched == 0 || len(rows) == 0 {
		t.Fatal("single-replica search returned nothing for a warm query")
	}
	v.Release()
	if st := set.Stats(); st.Failovers != 0 || st.Reads[0] != 1 || st.Healthy[0] != true {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if !set.Health(0).Healthy() {
		t.Fatal("healthy primary's health handle disagrees")
	}
	// All replicas dead: the shard fails whole, with ErrNoReplica once
	// backoff silences the probes.
	f := fault.Wrap(shard.NewLocal(ingest.New(shard.Partition(p.Corpus, 0, 1), icfg)))
	deadSet, err := replica.NewSet([]shard.Backend{f},
		replica.Config{Backoff: shard.Backoff{Initial: time.Hour, Max: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer deadSet.Close()
	f.Kill()
	if _, _, _, err := deadSet.Search(context.Background(), []string{"nfl"}, false, nil); err == nil {
		t.Fatal("search on a dead set succeeded")
	}
	if _, _, _, err := deadSet.Search(context.Background(), []string{"nfl"}, false, nil); err != replica.ErrNoReplica {
		t.Fatalf("second search want ErrNoReplica (backoff silences the probe), got %v", err)
	}
	if _, err := deadSet.Ingest(posts[0]); err == nil {
		t.Fatal("write with a dead primary succeeded")
	}
	if err := deadSet.IngestBatch(posts); err == nil {
		t.Fatal("batch write with a dead primary succeeded")
	}
}
