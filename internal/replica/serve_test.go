// Serving-layer tests for replication: the cache must survive a
// failover (same logical epochs, different replica answering), a
// replicated cluster must never go uncacheable (its epoch sample
// touches no replica), and a replica failure under mixed load must
// yield failover — zero partial results — while staying bit-identical
// to a cold rebuild.
package replica_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/world"
)

// clusterSink adapts a shard.Cluster to the infallible serve.Sink the
// load generator drives (a replicated shard's write only fails when
// its primary does).
type clusterSink struct{ c *shard.Cluster }

func (s clusterSink) Ingest(p microblog.Post) microblog.TweetID {
	id, err := s.c.Ingest(p)
	if err != nil {
		return -1
	}
	return id
}
func (s clusterSink) World() *world.World { return s.c.World() }
func (s clusterSink) Epoch() uint64       { return s.c.Epoch() }

// TestServeCacheSurvivesFailover pins the view-identity contract that
// makes failover invisible to the cache: an entry cached while
// follower A was serving stays valid when replica B answers the next
// sample — the logical epochs did not move — so a replica death alone
// invalidates nothing and bypasses nothing (no uncacheable requests,
// unlike a dead *unreplicated* shard); and a subsequent write still
// invalidates exactly as a single-node epoch bump would.
func TestServeCacheSurvivesFailover(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	cfg := replica.Config{Backoff: shard.Backoff{Initial: time.Hour, Max: time.Hour}}
	rc := newReplicated(t, p, 2, 2, icfg, cfg, false, true)

	online := p.Cfg.Online
	online.MatchWorkers = 1
	det := core.NewShardedLiveDetectorOver(p.Collection, rc.cluster, online)
	srv := serve.New(det, serve.DefaultConfig())

	const q = "49ers"
	first := srv.Search(q)
	if st := srv.Stats(); st.CacheMisses != 1 {
		t.Fatalf("first query: %d misses", st.CacheMisses)
	}
	srv.Search(q)
	if st := srv.Stats(); st.CacheHits != 1 {
		t.Fatalf("second query: %d hits", st.CacheHits)
	}

	// Both shards' followers die. The logical epoch vector is
	// unchanged, so the cached entry must keep serving — no
	// invalidation, no recompute, no cache bypass.
	rc.faults[0].Kill()
	rc.faults[1].Kill()
	again := srv.Search(q)
	st := srv.Stats()
	if st.CacheHits != 2 || st.Invalidations != 0 {
		t.Fatalf("failover invalidated the cache: %+v", st)
	}
	if st.Uncacheable != 0 {
		t.Fatalf("replicated shard went uncacheable on replica death: %+v", st)
	}
	expertsIdentical(t, "cached-across-failover", q, again, first)

	// Cold queries scatter for real now: reads fail over (the rotation
	// keeps offering the dead followers until backoff mutes them) and
	// the queries stay whole.
	for _, cq := range []string{"nfl", "diabetes", "coffee", "dow futures"} {
		srv.Search(cq)
	}
	st = srv.Stats()
	if st.PartialResults != 0 || st.ShardErrors != 0 {
		t.Fatalf("replica death degraded queries: %+v", st)
	}
	if st.Failovers == 0 {
		t.Fatal("no failovers surfaced in serve stats")
	}
	if st.Failovers != det.Failovers() {
		t.Fatalf("stats failovers %d, detector reports %d", st.Failovers, det.Failovers())
	}

	// A write moves the logical epoch of exactly one shard; the entry
	// must invalidate and recompute against the post-write view.
	post := streamPosts(p, 111, 1)[0]
	if _, err := rc.cluster.Ingest(post); err != nil {
		t.Fatal(err)
	}
	inv := st.Invalidations
	recomputed := srv.Search(q)
	direct, _ := det.Search(q)
	expertsIdentical(t, "post-write-recompute", q, recomputed, direct)
	st = srv.Stats()
	if st.Invalidations != inv+1 {
		t.Fatalf("write did not invalidate the entry: %+v", st)
	}
	if st.Uncacheable != 0 {
		t.Fatalf("uncacheable crept in: %+v", st)
	}
}

// TestReplicatedMixedLoadZeroPartials is the acceptance run: a
// follower dies at a scripted point under full mixed read/write load
// and the serving stats must show failover, not degradation — zero
// partial results, zero shard errors, zero uncacheable requests, the
// dead follower probed at most once per (here: infinite) backoff
// window — and the quiesced cluster must still rank bit-identically
// to a cold rebuild over the whole query pool.
func TestReplicatedMixedLoadZeroPartials(t *testing.T) {
	p, sets := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	cfg := replica.Config{Backoff: shard.Backoff{Initial: time.Hour, Max: time.Hour}}
	rc := newReplicated(t, p, 2, 2, icfg, cfg, false, true)

	online := p.Cfg.Online
	online.MatchWorkers = 1
	det := core.NewShardedLiveDetectorOver(p.Collection, rc.cluster, online)
	srv := serve.New(det, serve.DefaultConfig())

	var pool []string
	for _, set := range sets {
		pool = append(pool, set.Queries...)
	}

	// The kill fires mid-load, at the follower's 40th call — drain
	// semantics: whatever conversation is in flight completes, every
	// call after the gate fails.
	rc.faults[0].KillAfterCalls(40)
	res := serve.RunMixedLoad(srv, clusterSink{rc.cluster}, serve.MixedLoadConfig{
		Queries:       pool,
		Searches:      3 * len(pool),
		SearchWorkers: 4,
		Ingests:       400,
		IngestWorkers: 2,
		BaselineEvery: 5,
		Seed:          29,
	})
	if res.Ingested != 400 {
		t.Fatalf("sink dropped writes: %d of 400 ingested", res.Ingested)
	}
	st := res.Stats
	if st.PartialResults != 0 || st.ShardErrors != 0 {
		t.Fatalf("replica death degraded queries under load: %+v", st)
	}
	if st.Uncacheable != 0 {
		t.Fatalf("replicated cluster went uncacheable under load: %+v", st)
	}
	f := rc.faults[0]
	if f.Calls() <= 40 {
		t.Fatalf("kill never fired: %d calls", f.Calls())
	}
	// At most one write reaches the dead follower (the one that ejects
	// it; after that, writes skip it), and reads stop probing it after
	// one backoff trip — per-request dialing is the bug this layer
	// fixes.
	if killed := f.IngestsKilled(); killed > 1 {
		t.Fatalf("dead follower was sent %d writes after the kill", killed)
	}
	if probes := f.SearchesKilled(); probes > 8 {
		t.Fatalf("dead follower absorbed %d read probes — backoff is not gating reads", probes)
	}

	// The spine holds under fault + load: quiesce and rebuild cold from
	// the primaries' content.
	if err := rc.cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}
	all := append([]microblog.Tweet(nil), p.Corpus.Tweets()...)
	all = append(all, rc.ingested()...)
	cold := core.NewDetector(p.Collection, microblog.FromTweets(p.World, all), online)
	for _, q := range pool {
		got, _ := det.Search(q)
		want, _ := cold.Search(q)
		expertsIdentical(t, "mixed-load-fault", q, got, want)
	}
}
