// Benchmarks for the replication layer: what a replica set adds to
// the scatter-gather read path when everything is healthy
// (BenchmarkReplicatedSearch{1,2,3} — the R=1 row is the regression
// gate against the in-process LiveSearchSharded1 number, the R>1 rows
// price the rotation and freshness checks, which should be flat: one
// read goes to one replica regardless of R), and what one dead
// follower costs once backoff has muted it (BenchmarkFailoverSearch —
// the steady state should match the healthy single-replica cost,
// because a muted replica is skipped without dialing). BENCHMARKS.md
// records the per-PR numbers.
package replica_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/replica"
	"repro/internal/shard"
)

// benchReplicated boots a 1-shard × r-replica all-local cluster with
// 2048 streamed posts replicated and quiesced, and returns the
// detector plus the cluster handles.
func benchReplicated(b *testing.B, r int, cfg replica.Config, wrapFollowers bool) (*core.ShardedLiveDetector, *replCluster) {
	p, _ := testPipeline(b)
	rc := newReplicated(b, p, 1, r, ingest.DefaultConfig(), cfg, false, wrapFollowers)
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(37))
	batch := make([]microblog.Post, 2048)
	for i := range batch {
		batch[i] = stream.Next()
	}
	if err := rc.cluster.IngestBatch(batch); err != nil {
		b.Fatal(err)
	}
	if err := rc.cluster.Quiesce(); err != nil {
		b.Fatal(err)
	}
	online := p.Cfg.Online
	online.MatchWorkers = 1
	return core.NewShardedLiveDetectorOver(p.Collection, rc.cluster, online), rc
}

// benchReplicatedSearch measures steady-state read latency through an
// r-replica set: per query, the rotation picks one up-to-date healthy
// replica and the whole search→stats conversation runs there.
func benchReplicatedSearch(b *testing.B, r int) {
	d, _ := benchReplicated(b, r, replica.DefaultConfig(), false)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := d.Search("49ers")
		n = len(results)
	}
	b.ReportMetric(float64(n), "experts")
	b.ReportMetric(float64(r), "replicas")
	if pq, _ := d.PartialStats(); pq != 0 {
		b.Fatalf("%d partial queries during benchmark", pq)
	}
}

func BenchmarkReplicatedSearch1(b *testing.B) { benchReplicatedSearch(b, 1) }
func BenchmarkReplicatedSearch2(b *testing.B) { benchReplicatedSearch(b, 2) }
func BenchmarkReplicatedSearch3(b *testing.B) { benchReplicatedSearch(b, 3) }

// BenchmarkFailoverSearch measures the steady-state cost of one dead
// follower: the first read after the kill pays the failed attempt and
// trips the backoff, then every further read skips the corpse without
// dialing — the number should sit on top of the healthy
// single-replica cost, and the failover counter prices how rarely the
// probe fires.
func BenchmarkFailoverSearch(b *testing.B) {
	cfg := replica.Config{Backoff: shard.Backoff{Initial: time.Hour, Max: time.Hour}}
	d, rc := benchReplicated(b, 2, cfg, true)
	rc.faults[0].Kill()
	// Trip the backoff outside the timer: one failed attempt, one
	// failover.
	if results, _ := d.Search("49ers"); results == nil {
		b.Fatal("failover search returned no result slice")
	}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := d.Search("49ers")
		n = len(results)
	}
	b.StopTimer()
	b.ReportMetric(float64(n), "experts")
	b.ReportMetric(float64(d.Failovers()), "failovers")
	if pq, _ := d.PartialStats(); pq != 0 {
		b.Fatalf("%d partial queries during benchmark", pq)
	}
}
