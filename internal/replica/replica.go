// Package replica adds redundancy under the shard layer: a Set fronts
// one primary plus N followers — any mix of shard.Local and
// transport.RemoteShard — behind the same shard.Backend interface the
// scatter-gather detector and the Cluster already speak, so replication
// drops in per shard with zero changes to the read path above it.
// Before this layer a dead shard meant fail-fast partial results; with
// a Set in front, reads fail over to the next replica and the query
// stays whole.
//
// Write path: every write lands on the primary first — a primary
// failure fails the write, full stop, and because the failure is
// ambiguous (a remote primary may have applied the write before the
// response was lost) the set presumes the primary holds it: the
// logical epoch advances, the followers are ejected, and reads route
// to the primary alone until re-wired (see failedPrimaryWrite) — and
// is then replicated synchronously to each follower through the
// ordinary Ingest path (for a remote follower, the same OpIngest
// frames routed ingest already uses). A follower that misses a write is ejected from the read set
// permanently (until re-wired): it has a gap the Set cannot repair
// without a replay log, and serving reads from it would silently skew
// rankings — exactly the failure mode the bit-identical bar exists to
// catch. Ejected followers also stop receiving writes, so their content
// stays a clean prefix of the primary's. Writes are never retried and
// never fail over to a follower: a post applied to a follower but not
// the primary would diverge the replicas, and a blind re-send could
// duplicate a post the replica already holds (the transport's
// write-non-retry rule, kept at this layer too).
//
// Read path: replicas are compared by their replication epochs — the
// per-replica count of writes applied, maintained by the Set, which is
// the coordinator and sole writer. Reads rotate across the freshest
// reachable replicas (applied == the set's logical epoch; the primary
// is always freshest by construction) and fall over to the next on
// error instead of surfacing a partial result. A failing replica enters
// a decaying backoff window (shard.Health): while the window is open,
// reads skip it without dialing — one probe per window, so a dead
// follower costs one dial per window, not one timeout per query — and
// a successful probe restores it to the rotation. A stale follower
// (epoch gap) is rejected outright; those reads route to the primary.
//
// View identity: the Set's Epoch is its logical write epoch — a
// coordinator-side counter bumped once per accepted write — not any
// replica's internal index epoch. Replica index epochs advance on
// background seals and compactions at each replica's own pace, so they
// are not comparable across connections; the logical epoch is
// replica-independent, which makes failover invisible to the serving
// cache: an entry tagged before a failover is still valid after it
// (same logical epoch), and a subsequent write invalidates it exactly
// as a single-node epoch bump would. Compactions no longer invalidate
// cache entries at all, which is sound because compaction never changes
// results. Sampling the logical epoch touches no replica, so a
// replicated shard can never contribute an EpochUnknown component.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/world"
)

// ErrNoReplica reports a read with no admissible replica: every
// up-to-date replica is inside a failure-backoff window (or has
// already failed this read). The shard is unreachable for this query;
// the scatter-gather detector degrades exactly as it would for a
// failed plain backend.
var ErrNoReplica = errors.New("replica: no reachable up-to-date replica")

// Config tunes a Set.
type Config struct {
	// Backoff tunes the per-replica failure windows (shard.Health).
	// Zero fields take shard.DefaultBackoff.
	Backoff shard.Backoff
	// Obs, when non-nil, exports the set's failure accounting into the
	// registry: replica_failovers, replica_ejections (followers dropped
	// from the read set by a missed write), replica_backoff_skips
	// (reads that bypassed a replica inside its failure window without
	// dialing) and replica_primary_write_failures. Handles are
	// get-or-create by name, so every Set sharing one registry — one
	// per shard in a replicated cluster — aggregates into the same
	// rows. Nil costs the read path nothing.
	Obs *obs.Registry
}

// DefaultConfig returns the replication defaults.
func DefaultConfig() Config { return Config{Backoff: shard.DefaultBackoff()} }

// Set is a replicated shard: one primary plus N followers behind the
// shard.Backend interface. See the package comment for the write,
// read and view-identity contracts. Safe for concurrent use — writes
// serialize on an internal mutex (mirroring the single-index write
// path), reads are lock-free.
type Set struct {
	replicas []shard.Backend
	health   []*shard.Health

	// epoch is the logical write epoch: the number of writes this Set
	// has accepted (== the primary's applied count). It identifies the
	// set's view to the serving cache.
	epoch atomic.Uint64
	// applied[i] counts writes replica i has applied. applied[0] always
	// equals epoch; a follower with applied[i] < epoch is stale and out
	// of the read set.
	applied []atomic.Uint64

	// wmu serializes the write path: primary apply, follower fan-out
	// and the epoch bump form one atomic step with respect to other
	// writers.
	wmu sync.Mutex

	rr        atomic.Uint64 // read rotation cursor
	failovers atomic.Int64
	reads     []atomic.Int64 // per-replica served searches

	// Observability (nil without Config.Obs; all handles nil-safe):
	// cluster-wide failure accounting, aggregated across Sets sharing a
	// registry.
	obsFailovers        *obs.Counter
	obsEjections        *obs.Counter
	obsBackoffSkips     *obs.Counter
	obsPrimaryWriteFail *obs.Counter
}

// Set must satisfy the same interface a plain shard does — that is
// the whole point — and additionally marks its epoch as process-local
// and reports failovers to the cluster.
var (
	_ shard.Backend          = (*Set)(nil)
	_ shard.EpochLocality    = (*Set)(nil)
	_ shard.FailoverReporter = (*Set)(nil)
)

// NewSet fronts replicas[0] as the primary and the rest as followers.
// Every replica must hold the identical shard content at wiring time
// (the same base partition; for remote replicas the transport
// handshake checks the coordinates — see transport.DialReplicas).
func NewSet(replicas []shard.Backend, cfg Config) (*Set, error) {
	if len(replicas) == 0 {
		return nil, errors.New("replica: a set needs at least a primary")
	}
	s := &Set{
		replicas: replicas,
		health:   make([]*shard.Health, len(replicas)),
		applied:  make([]atomic.Uint64, len(replicas)),
		reads:    make([]atomic.Int64, len(replicas)),
	}
	for i := range s.health {
		s.health[i] = shard.NewHealth(cfg.Backoff)
	}
	if cfg.Obs != nil {
		s.obsFailovers = cfg.Obs.Counter("replica_failovers")
		s.obsEjections = cfg.Obs.Counter("replica_ejections")
		s.obsBackoffSkips = cfg.Obs.Counter("replica_backoff_skips")
		s.obsPrimaryWriteFail = cfg.Obs.Counter("replica_primary_write_failures")
	}
	return s, nil
}

// NumReplicas returns the replica count (primary included).
func (s *Set) NumReplicas() int { return len(s.replicas) }

// Primary returns the primary replica.
func (s *Set) Primary() shard.Backend { return s.replicas[0] }

// Replica returns the i-th replica (0 is the primary).
func (s *Set) Replica(i int) shard.Backend { return s.replicas[i] }

// Health returns replica i's failure-backoff state.
func (s *Set) Health(i int) *shard.Health { return s.health[i] }

// EpochIsLocal marks the set's epoch as a process-local read: the
// logical write epoch is a coordinator-side counter, so sampling it
// never touches a replica — a Cluster of Sets samples its whole epoch
// vector without a single RPC, even when every replica is remote.
func (s *Set) EpochIsLocal() bool { return true }

// Epoch implements shard.Backend: the logical write epoch (writes
// accepted by this Set), which identifies the set's view to the
// serving cache. It cannot fail and never dials.
func (s *Set) Epoch() (uint64, error) { return s.epoch.Load(), nil }

// Failovers implements shard.FailoverReporter: reads answered by a
// non-first-choice replica after at least one replica failed.
func (s *Set) Failovers() int64 { return s.failovers.Load() }

// failedPrimaryWrite records an ambiguous primary write (the error
// may have arrived after the primary applied it — the lost-response
// case the transport's write-non-retry rule exists for). The primary
// is *presumed* to hold the writes: it is the authoritative copy
// either way, so reads must route only to it — the logical epoch and
// the primary's applied count advance together while every follower
// falls behind (ejected) — and the epoch bump invalidates any cache
// entry computed before the suspect write. If the primary in fact
// never applied it (a clean dial failure), the ejections cost
// redundancy, never correctness: reads still serve exactly the
// primary's content, which matches what the caller was told (the
// write failed). Called with wmu held.
func (s *Set) failedPrimaryWrite(n int) {
	s.health[0].Fail()
	s.applied[0].Add(uint64(n))
	s.epoch.Add(uint64(n))
	s.obsPrimaryWriteFail.Inc()
	// The epoch advance ejects every follower still in the read set.
	s.obsEjections.Add(int64(len(s.replicas) - 1))
}

// Ingest implements shard.Backend: the write goes to the primary — a
// primary failure fails the write, and because the failure is
// ambiguous (the primary may have applied it before the response was
// lost), the followers are ejected and reads route to the primary
// alone until re-wired (see failedPrimaryWrite) — then replicates
// synchronously to every up-to-date follower. A follower that fails
// the replication is ejected from the read set (stale) and marked
// down; the write still succeeds.
func (s *Set) Ingest(p microblog.Post) (microblog.TweetID, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	id, err := s.replicas[0].Ingest(p)
	if err != nil {
		s.failedPrimaryWrite(1)
		return id, fmt.Errorf("replica: primary ingest: %w", err)
	}
	s.health[0].Ok()
	s.applied[0].Add(1)
	epoch := s.epoch.Add(1)
	for i := 1; i < len(s.replicas); i++ {
		if s.applied[i].Load() != epoch-1 {
			continue // already stale: stop feeding it, keep its content a clean prefix
		}
		if _, err := s.replicas[i].Ingest(p); err != nil {
			s.health[i].Fail()
			s.obsEjections.Inc()
			continue // ejected: applied[i] stays behind epoch for good
		}
		s.applied[i].Add(1)
	}
	return id, nil
}

// IngestBatch implements shard.Backend with the same
// primary-then-followers contract as Ingest; the batch counts as
// len(posts) writes and a follower that fails mid-batch is ejected at
// its failure point.
func (s *Set) IngestBatch(posts []microblog.Post) error {
	if len(posts) == 0 {
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	before := s.epoch.Load()
	if err := s.replicas[0].IngestBatch(posts); err != nil {
		// Ambiguous like the single-post case: any prefix of the batch
		// may have applied, so presume all of it did.
		s.failedPrimaryWrite(len(posts))
		return fmt.Errorf("replica: primary ingest: %w", err)
	}
	s.health[0].Ok()
	s.applied[0].Add(uint64(len(posts)))
	s.epoch.Add(uint64(len(posts)))
	for i := 1; i < len(s.replicas); i++ {
		if s.applied[i].Load() != before {
			continue
		}
		if err := s.replicas[i].IngestBatch(posts); err != nil {
			s.health[i].Fail()
			s.obsEjections.Inc()
			continue
		}
		s.applied[i].Add(uint64(len(posts)))
	}
	return nil
}

// Search implements shard.Backend: the read fans over the freshest
// reachable replicas — rotation spreads load across the primary and
// every up-to-date follower — and falls over to the next replica on
// error instead of failing the shard. A stale follower is never read.
// A replica inside a backoff window is skipped without dialing (one
// probe per window re-admits a recovered replica). Only when every
// admissible replica has failed does the shard fail for this query.
func (s *Set) Search(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate) ([]expertise.RawCandidate, int, shard.View, error) {
	epoch := s.epoch.Load()
	n := len(s.replicas)
	// Reduce the cursor in uint64 space: a raw int conversion would
	// eventually go negative and make the modulo below a panic.
	start := int(s.rr.Add(1) % uint64(n))
	var firstErr error
	tried := 0
	for k := 0; k < n; k++ {
		i := (start + k) % n
		// Freshness: a replica behind the logical epoch has missed a
		// write; reading it would un-count posts the caller already
		// observed as accepted. (A replica *ahead* of the sampled epoch
		// raced a concurrent write — it holds a superset, which is the
		// same monotonic-forward-step the epoch rules allow.)
		if s.applied[i].Load() < epoch {
			continue
		}
		if !s.health[i].Allow() {
			s.obsBackoffSkips.Inc()
			continue
		}
		rows, matched, v, err := s.replicas[i].Search(ctx, terms, extended, raw)
		if err == nil {
			s.health[i].Ok()
			s.reads[i].Add(1)
			if tried > 0 {
				s.failovers.Add(1)
				s.obsFailovers.Inc()
			}
			return rows, matched, v, nil
		}
		s.health[i].Fail()
		tried++
		if firstErr == nil {
			firstErr = fmt.Errorf("replica %d: %w", i, err)
		}
		raw = rows[:0] // reuse the scratch buffer for the next attempt
	}
	if firstErr == nil {
		firstErr = ErrNoReplica
	}
	return raw[:0], 0, nil, firstErr
}

// SearchStats implements shard.SearchStatser with the same
// freshest-reachable rotation and failover as Search, so a replicated
// remote shard keeps the one-round-trip composite query. A replica
// that implements the composite answers it directly; one that does not
// is emulated with Search plus a Stats for its own candidates against
// the same pinned view — identical totals either way.
func (s *Set) SearchStats(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate, stats []expertise.UserStats) ([]expertise.RawCandidate, int, []expertise.UserStats, shard.View, error) {
	epoch := s.epoch.Load()
	n := len(s.replicas)
	start := int(s.rr.Add(1) % uint64(n))
	var firstErr error
	tried := 0
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if s.applied[i].Load() < epoch {
			continue
		}
		if !s.health[i].Allow() {
			s.obsBackoffSkips.Inc()
			continue
		}
		rows, matched, rowStats, v, err := replicaSearchStats(ctx, s.replicas[i], terms, extended, raw, stats)
		if err == nil {
			s.health[i].Ok()
			s.reads[i].Add(1)
			if tried > 0 {
				s.failovers.Add(1)
				s.obsFailovers.Inc()
			}
			return rows, matched, rowStats, v, nil
		}
		s.health[i].Fail()
		tried++
		if firstErr == nil {
			firstErr = fmt.Errorf("replica %d: %w", i, err)
		}
		raw, stats = rows[:0], rowStats[:0] // reuse the scratch buffers
	}
	if firstErr == nil {
		firstErr = ErrNoReplica
	}
	return raw[:0], 0, stats[:0], nil, firstErr
}

// replicaSearchStats runs the composite against one replica,
// emulating it (search, then own-candidate stats on the pinned view)
// when the replica predates shard.SearchStatser.
func replicaSearchStats(ctx context.Context, b shard.Backend, terms []string, extended bool, raw []expertise.RawCandidate, stats []expertise.UserStats) ([]expertise.RawCandidate, int, []expertise.UserStats, shard.View, error) {
	if ss, ok := b.(shard.SearchStatser); ok {
		return ss.SearchStats(ctx, terms, extended, raw, stats)
	}
	rows, matched, v, err := b.Search(ctx, terms, extended, raw)
	if err != nil {
		return rows, 0, stats[:0], nil, err
	}
	users := make([]world.UserID, 0, len(rows))
	for i := range rows {
		users = append(users, rows[i].User)
	}
	stats, err = v.Stats(ctx, users, stats)
	if err != nil {
		v.Release()
		return rows[:0], 0, stats[:0], nil, err
	}
	return rows, matched, stats, v, nil
}

// Quiesce implements shard.Backend: the primary is always drained —
// its backoff window is bypassed, because a silently skipped primary
// would let a caller believe the quiesced-state equivalence bar holds
// when the drain never ran — and every follower outside a backoff
// window is drained too. Only a primary failure is an error: an
// unreachable follower is already out of the read set, and an
// un-drained one changes segment layout, never results.
func (s *Set) Quiesce() error {
	var firstErr error
	for i, r := range s.replicas {
		if i > 0 && !s.health[i].Allow() {
			continue
		}
		if err := r.Quiesce(); err != nil {
			s.health[i].Fail()
			if i == 0 && firstErr == nil {
				firstErr = fmt.Errorf("replica: primary quiesce: %w", err)
			}
			continue
		}
		s.health[i].Ok()
	}
	return firstErr
}

// Close implements shard.Backend: every replica is closed; the first
// error is returned.
func (s *Set) Close() error {
	var firstErr error
	for i, r := range s.replicas {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("replica %d: %w", i, err)
		}
	}
	return firstErr
}

// Stats is a point-in-time snapshot of a Set's replication state.
type Stats struct {
	// Replicas is the replica count, primary included.
	Replicas int
	// Epoch is the logical write epoch (writes accepted by the Set).
	Epoch uint64
	// Applied holds each replica's applied write count; Applied[0]
	// always equals Epoch.
	Applied []uint64
	// Stale flags replicas ejected from the read set by an epoch gap.
	Stale []bool
	// Healthy flags replicas outside any failure-backoff window.
	Healthy []bool
	// Reads counts searches each replica has served.
	Reads []int64
	// Failovers counts reads answered by a non-first-choice replica
	// after at least one replica failed.
	Failovers int64
}

// Stats snapshots the set's replication counters.
func (s *Set) Stats() Stats {
	st := Stats{
		Replicas:  len(s.replicas),
		Epoch:     s.epoch.Load(),
		Failovers: s.failovers.Load(),
	}
	for i := range s.replicas {
		a := s.applied[i].Load()
		st.Applied = append(st.Applied, a)
		st.Stale = append(st.Stale, a < st.Epoch)
		st.Healthy = append(st.Healthy, s.health[i].Healthy())
		st.Reads = append(st.Reads, s.reads[i].Load())
	}
	return st
}
