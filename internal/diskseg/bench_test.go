package diskseg_test

import (
	"path/filepath"
	"testing"

	"repro/internal/diskseg"
	"repro/internal/microblog"
	"repro/internal/world"
)

// benchSegment writes the tiny corpus once and opens it with the given
// cache size.
func benchSegment(b *testing.B, cache int) (*microblog.Corpus, *diskseg.Segment) {
	b.Helper()
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	path := filepath.Join(b.TempDir(), "seg.esg")
	if err := diskseg.Write(path, c); err != nil {
		b.Fatal(err)
	}
	s, err := diskseg.Open(path, diskseg.Options{BlockCache: cache})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Release)
	return c, s
}

// BenchmarkDiskSegMatchHot measures the zero-copy match path with the
// working set in the block cache — the steady state of a hot term.
func BenchmarkDiskSegMatchHot(b *testing.B) {
	_, s := benchSegment(b, 0)
	var buf []microblog.TweetID
	buf = s.MatchAppend("49ers", buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.MatchAppend("49ers", buf)
	}
	b.ReportMetric(float64(len(buf)), "matches")
}

// BenchmarkDiskSegMatchUncached decodes every posting block off the
// map on every call — the per-query floor of a fully cold segment.
func BenchmarkDiskSegMatchUncached(b *testing.B) {
	_, s := benchSegment(b, -1)
	var buf []microblog.TweetID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.MatchAppend("49ers", buf)
	}
	b.ReportMetric(float64(len(buf)), "matches")
}

// BenchmarkDiskSegTweetHot measures random-access record decode
// through the tweet-block cache.
func BenchmarkDiskSegTweetHot(b *testing.B) {
	c, s := benchSegment(b, 0)
	n := c.NumTweets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Tweet(microblog.TweetID(i * 31 % n))
	}
}

// BenchmarkDiskSegWrite measures the encode+write+reopen cost of one
// segment — the unit of background spill work.
func BenchmarkDiskSegWrite(b *testing.B) {
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, "seg.esg")
		if err := diskseg.Write(path, c); err != nil {
			b.Fatal(err)
		}
		s, err := diskseg.Open(path, diskseg.Options{})
		if err != nil {
			b.Fatal(err)
		}
		s.Release()
	}
	b.ReportMetric(float64(c.NumTweets()), "tweets")
}
