package diskseg_test

// The disk-fault suite: every storage-level fault the chaos harness
// can inject — refused opens, failed maps, short reads, truncated
// files, flipped bytes — must surface as a clean sentinel error from
// Open. Nothing past Open ever sees a faulty byte (the whole file is
// checksummed up front), so "clean error, never a wrong ranking" is
// pinned here once for every downstream consumer.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/diskseg"
	"repro/internal/fault"
	"repro/internal/microblog"
	"repro/internal/world"
)

// writeSegFile writes a tiny corpus segment and returns its path and
// size.
func writeSegFile(t *testing.T) (string, int) {
	t.Helper()
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	path := filepath.Join(t.TempDir(), "seg.esg")
	if err := diskseg.Write(path, c); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, int(st.Size())
}

func TestOpenRefused(t *testing.T) {
	path, _ := writeSegFile(t)
	io := fault.NewDiskIO()
	io.FailOpens(nil)
	if _, err := diskseg.Open(path, diskseg.Options{IO: io}); !errors.Is(err, fault.ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
	io.Heal()
	s, err := diskseg.Open(path, diskseg.Options{IO: io})
	if err != nil {
		t.Fatalf("healed open failed: %v", err)
	}
	s.Release()
}

func TestMmapRefused(t *testing.T) {
	path, _ := writeSegFile(t)
	io := fault.NewDiskIO()
	io.FailMmaps(nil)
	if _, err := diskseg.Open(path, diskseg.Options{IO: io}); !errors.Is(err, fault.ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
}

// TestTruncatedFile sweeps truncation points across the whole file —
// every prefix must yield ErrTruncated or ErrChecksum, never a
// segment and never a panic.
func TestTruncatedFile(t *testing.T) {
	path, size := writeSegFile(t)
	step := size/97 + 1 // ~100 cut points incl. awkward mid-varint ones
	for cut := 0; cut < size; cut += step {
		io := fault.NewDiskIO()
		io.TruncateTo(cut)
		s, err := diskseg.Open(path, diskseg.Options{IO: io})
		if err == nil {
			s.Release()
			t.Fatalf("cut at %d/%d bytes: opened cleanly", cut, size)
		}
		if !errors.Is(err, diskseg.ErrTruncated) && !errors.Is(err, diskseg.ErrChecksum) {
			t.Fatalf("cut at %d/%d bytes: err = %v, want ErrTruncated or ErrChecksum", cut, size, err)
		}
	}
}

// TestCorruptByte flips one byte at offsets spread over every section
// of the file. Every flip must be caught at Open as a sentinel error;
// a flip that survived to the read path could silently reorder a
// ranking.
func TestCorruptByte(t *testing.T) {
	path, size := writeSegFile(t)
	step := size/211 + 1
	for off := 0; off < size; off += step {
		io := fault.NewDiskIO()
		io.CorruptByte(off)
		s, err := diskseg.Open(path, diskseg.Options{IO: io})
		if err == nil {
			s.Release()
			t.Fatalf("flip at %d/%d: opened cleanly", off, size)
		}
		if !errors.Is(err, diskseg.ErrChecksum) && !errors.Is(err, diskseg.ErrCorrupt) && !errors.Is(err, diskseg.ErrTruncated) {
			t.Fatalf("flip at %d/%d: err = %v, want a diskseg sentinel", off, size, err)
		}
	}
}

// TestEmptyAndGarbageFiles covers the degenerate inputs an operator
// can hand the loader: an empty file and a file of the right size but
// the wrong content.
func TestEmptyAndGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.esg")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := diskseg.Open(empty, diskseg.Options{}); !errors.Is(err, diskseg.ErrTruncated) {
		t.Fatalf("empty file: err = %v, want ErrTruncated", err)
	}
	garbage := filepath.Join(dir, "garbage.esg")
	junk := make([]byte, 4096)
	for i := range junk {
		junk[i] = byte(i * 31)
	}
	if err := os.WriteFile(garbage, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := diskseg.Open(garbage, diskseg.Options{}); !errors.Is(err, diskseg.ErrCorrupt) {
		t.Fatalf("garbage file: err = %v, want ErrCorrupt", err)
	}
	if _, err := diskseg.Open(filepath.Join(dir, "missing.esg"), diskseg.Options{}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want ErrNotExist", err)
	}
}
