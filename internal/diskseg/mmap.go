//go:build unix

package diskseg

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. An empty file maps to nil
// (mmap of length 0 is an error on Linux).
func mmapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
