package diskseg

import (
	"os"
)

// IO is the file/mmap seam of the read path. Production uses OS (real
// files, a real memory map); the chaos harness (internal/fault.IO)
// wraps it to inject open failures, mmap failures, truncation and
// corruption without touching a real disk fault. Write always goes
// through the os package directly — spill errors on the write side
// surface as ordinary file-system errors and leave the in-heap segment
// in place.
type IO interface {
	// Open opens an existing segment file for reading.
	Open(path string) (File, error)
}

// File is one opened segment file. Mmap maps (or loads) the whole file
// read-only; the returned bytes stay valid until Close. Close releases
// the mapping and the descriptor.
type File interface {
	// Size returns the file's length in bytes.
	Size() (int64, error)
	// Mmap returns the whole file as read-only bytes.
	Mmap() ([]byte, error)
	// Close unmaps and closes. The bytes Mmap returned must not be
	// touched afterwards.
	Close() error
}

// OS is the production IO: real files, a real read-only memory map on
// unix (a heap read elsewhere).
type OS struct{}

// Open implements IO over the real file system.
func (OS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// osFile implements File over an *os.File plus its live mapping.
type osFile struct {
	f      *os.File
	mapped []byte
}

// Size implements File.
func (o *osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Mmap implements File via the platform map (mmap.go / mmap_other.go).
func (o *osFile) Mmap() ([]byte, error) {
	if o.mapped != nil {
		return o.mapped, nil
	}
	b, err := mmapFile(o.f)
	if err != nil {
		return nil, err
	}
	o.mapped = b
	return b, nil
}

// Close implements File.
func (o *osFile) Close() error {
	var err error
	if o.mapped != nil {
		err = munmapFile(o.mapped)
		o.mapped = nil
	}
	if cerr := o.f.Close(); err == nil {
		err = cerr
	}
	return err
}
