// Package diskseg is the disk tier of the streaming index: a compact
// on-disk format for sealed (immutable) segments, written at spill or
// compaction time, served through a read-only memory map. The read
// path is MatchAppend-shaped — the same contract as
// microblog.Corpus.MatchAppend — so a cold segment plugs into the live
// snapshot's per-segment matching loop unchanged: posting blocks are
// delta-varint decoded straight off the map into scratch buffers and
// fed to the existing galloping microblog.IntersectInto; per-user
// feature denominators are fixed-width rows read in place with no
// decode at all. A small LRU of hot decoded blocks (posting blocks and
// tweet blocks share it) keeps frequently queried terms at in-heap
// latency while the long tail of the corpus costs only page cache.
//
// Lifecycle. Segments are refcounted: the opener holds one reference,
// every published ingest snapshot that includes the segment takes
// another (Retain), and the map is torn down — and the file optionally
// removed — only when the last reference is released. That is the
// pin-against-unmap-under-reader rule: a query running against an old
// snapshot keeps its segments mapped no matter how many compactions
// have since rewritten the layout. See ARCHITECTURE.md, storage tier.
package diskseg

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/textutil"
	"repro/internal/world"
)

// Options tunes an opened segment.
type Options struct {
	// IO overrides the file/mmap layer; nil means the real OS. The
	// chaos harness injects open failures, truncation and corruption
	// through this seam.
	IO IO
	// BlockCache caps the hot decoded blocks (posting + tweet blocks
	// together) this segment keeps in heap. Zero means 256; negative
	// disables caching, so every access decodes off the map — the
	// configuration the cold-path benchmarks measure.
	BlockCache int
	// Obs, when non-nil, registers the disk tier's metrics: block-cache
	// traffic (disk_block_cache_hits / disk_block_cache_misses) and the
	// per-miss decode latency histogram (disk_read_ns). Nil keeps the
	// read path free of clock reads.
	Obs *obs.Registry
}

// termMeta is one dictionary entry: the posting count and the block
// directory, decoded into heap at open time (the dictionary is tiny
// next to the postings it describes).
type termMeta struct {
	count  int
	blocks []blockRef
}

// blockRef locates one posting block in the map.
type blockRef struct {
	first microblog.TweetID // first id in the block (directory skip key)
	off   int               // absolute offset into the mapped file
	blen  int               // encoded byte length
	n     int               // ids in the block
}

// span locates one tweet block in the map.
type span struct{ off, blen int }

// Segment is one opened on-disk sealed segment. All read methods are
// safe for concurrent use; the segment never changes after Open.
type Segment struct {
	path string
	f    File
	data []byte

	numTweets int
	numUsers  int
	statsOff  int

	terms       map[string]*termMeta
	termList    []string // dictionary order; tweet records reference it
	tweetBlocks []span

	cache *blockCache

	refs   atomic.Int64
	remove atomic.Bool

	obsReadNS *obs.Histogram
}

// Open maps the segment at path and validates it: magic, version,
// section bounds and every section checksum. A truncated, short-read
// or corrupted file fails here with a clean error (ErrTruncated,
// ErrChecksum, ErrCorrupt) — never later, and never with a wrong
// result. The returned segment holds one reference; Release it when
// the layout drops the segment.
func Open(path string, opts Options) (*Segment, error) {
	io := opts.IO
	if io == nil {
		io = OS{}
	}
	f, err := io.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskseg: open %s: %w", path, err)
	}
	s, err := open(path, f, opts)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("diskseg: open %s: %w", path, err)
	}
	return s, nil
}

func open(path string, f File, opts Options) (*Segment, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data, err := f.Mmap()
	if err != nil {
		return nil, err
	}
	if int64(len(data)) < size {
		return nil, fmt.Errorf("mapped %d of %d bytes: %w", len(data), size, ErrTruncated)
	}
	numTweets, numUsers, numTerms, numTweetBlocks, secs, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	s := &Segment{
		path:      path,
		f:         f,
		data:      data,
		numTweets: numTweets,
		numUsers:  numUsers,
		statsOff:  secs[secStats].off,
	}
	if err := s.parseDict(secs[secDict], secs[secPostings], numTerms); err != nil {
		return nil, err
	}
	if err := s.parseTweetDir(secs[secTweetDir], secs[secTweets], numTweetBlocks); err != nil {
		return nil, err
	}
	capacity := opts.BlockCache
	if capacity == 0 {
		capacity = 256
	}
	if capacity > 0 {
		s.cache = newBlockCache(capacity, opts.Obs)
	}
	if opts.Obs != nil {
		s.obsReadNS = opts.Obs.Histogram("disk_read_ns")
	}
	s.refs.Store(1)
	return s, nil
}

// parseDict decodes the term dictionary and block directory into heap.
func (s *Segment) parseDict(dict, postings section, numTerms int) error {
	buf := s.data[dict.off : dict.off+dict.n]
	s.terms = make(map[string]*termMeta, numTerms)
	s.termList = make([]string, 0, numTerms)
	next := postings.off
	end := postings.off + postings.n
	for i := 0; i < numTerms; i++ {
		tlen, err := dictUvarint(&buf)
		if err != nil {
			return fmt.Errorf("dict term %d: %w", i, err)
		}
		if tlen > uint64(len(buf)) {
			return fmt.Errorf("dict term %d: name %d bytes past section: %w", i, tlen, ErrCorrupt)
		}
		tok := string(buf[:tlen])
		buf = buf[tlen:]
		count, err := dictUvarint(&buf)
		if err != nil {
			return fmt.Errorf("dict term %q: %w", tok, err)
		}
		m := &termMeta{count: int(count)}
		for got := 0; got < m.count; got += microblog.PostingsBlockLen {
			n := m.count - got
			if n > microblog.PostingsBlockLen {
				n = microblog.PostingsBlockLen
			}
			first, err := dictUvarint(&buf)
			if err != nil {
				return fmt.Errorf("dict term %q block dir: %w", tok, err)
			}
			blen, err := dictUvarint(&buf)
			if err != nil {
				return fmt.Errorf("dict term %q block dir: %w", tok, err)
			}
			if int(blen) > end-next {
				return fmt.Errorf("dict term %q: block %d bytes past postings section: %w", tok, blen, ErrCorrupt)
			}
			m.blocks = append(m.blocks, blockRef{
				first: microblog.TweetID(first), off: next, blen: int(blen), n: n,
			})
			next += int(blen)
		}
		s.terms[tok] = m
		s.termList = append(s.termList, tok)
	}
	if next != end {
		return fmt.Errorf("postings section has %d trailing bytes: %w", end-next, ErrCorrupt)
	}
	return nil
}

// parseTweetDir turns the fixed-width block-length table into absolute
// spans.
func (s *Segment) parseTweetDir(dir, tweets section, numTweetBlocks int) error {
	s.tweetBlocks = make([]span, numTweetBlocks)
	next := tweets.off
	end := tweets.off + tweets.n
	for b := 0; b < numTweetBlocks; b++ {
		blen := int(binary.LittleEndian.Uint32(s.data[dir.off+4*b:]))
		if blen > end-next {
			return fmt.Errorf("tweet block %d: %d bytes past section: %w", b, blen, ErrCorrupt)
		}
		s.tweetBlocks[b] = span{off: next, blen: blen}
		next += blen
	}
	if next != end {
		return fmt.Errorf("tweets section has %d trailing bytes: %w", end-next, ErrCorrupt)
	}
	return nil
}

// dictUvarint reads one uvarint off the front of *buf.
func dictUvarint(buf *[]byte) (uint64, error) {
	v, n := binary.Uvarint(*buf)
	if n <= 0 {
		return 0, fmt.Errorf("dictionary ends mid-varint: %w", ErrCorrupt)
	}
	*buf = (*buf)[n:]
	return v, nil
}

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// SizeBytes returns the mapped file size — what the segment costs on
// disk rather than in heap.
func (s *Segment) SizeBytes() int { return len(s.data) }

// NumTweets returns the number of posts in the segment.
func (s *Segment) NumTweets() int { return s.numTweets }

// NumUsers returns the user-universe size the stat tables cover.
func (s *Segment) NumUsers() int { return s.numUsers }

// NumTweetsBy reads the user's authored-post count in place off the
// map — no decode, no allocation.
func (s *Segment) NumTweetsBy(u world.UserID) int {
	if int(u) >= s.numUsers || u < 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(s.data[s.statsOff+4*int(u):]))
}

// NumMentionsOf reads the user's mentions-received count in place.
func (s *Segment) NumMentionsOf(u world.UserID) int {
	if int(u) >= s.numUsers || u < 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(s.data[s.statsOff+4*(s.numUsers+int(u)):]))
}

// NumRetweetsOf reads the user's retweets-received count in place.
func (s *Segment) NumRetweetsOf(u world.UserID) int {
	if int(u) >= s.numUsers || u < 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(s.data[s.statsOff+4*(2*s.numUsers+int(u)):]))
}

// matchScratch holds the per-call decode buffers of MatchAppend.
type matchScratch struct {
	a, b  []microblog.TweetID
	metas []*termMeta
}

var matchPool = sync.Pool{New: func() any { return &matchScratch{} }}

// MatchAppend is the segment's zero-copy matcher, contract-identical
// to microblog.Corpus.MatchAppend: it writes the segment-local ids of
// all posts containing every token of the query into buf (capacity
// reused, contents discarded) and returns the filled buffer. Posting
// lists are materialized block by block — hot blocks from the LRU,
// cold ones decoded straight off the map — then intersected
// rarest-first through the galloping microblog.IntersectInto, exactly
// as the in-heap path does, which is what makes a spilled segment
// bit-identical to the corpus it was written from.
func (s *Segment) MatchAppend(query string, buf []microblog.TweetID) []microblog.TweetID {
	tokens := textutil.Tokenize(query)
	if len(tokens) == 0 {
		return buf[:0]
	}
	if len(tokens) == 1 {
		m := s.terms[tokens[0]]
		if m == nil {
			return buf[:0]
		}
		return s.termAppend(m, buf[:0])
	}
	sc := matchPool.Get().(*matchScratch)
	defer matchPool.Put(sc)
	sc.metas = sc.metas[:0]
	for _, tok := range tokens {
		m := s.terms[tok]
		if m == nil {
			return buf[:0]
		}
		sc.metas = append(sc.metas, m)
	}
	metas := sc.metas
	sort.Slice(metas, func(i, j int) bool { return metas[i].count < metas[j].count })
	sc.a = s.termAppend(metas[0], sc.a[:0])
	sc.b = s.termAppend(metas[1], sc.b[:0])
	buf = microblog.IntersectInto(buf, sc.a, sc.b)
	for _, m := range metas[2:] {
		if len(buf) == 0 {
			return buf
		}
		sc.a = s.termAppend(m, sc.a[:0])
		buf = microblog.IntersectInto(buf, buf, sc.a)
	}
	return buf
}

// Postings appends the full decoded posting list of one token to buf —
// the single-term fast path and the test surface of the block decoder.
func (s *Segment) Postings(token string, buf []microblog.TweetID) []microblog.TweetID {
	m := s.terms[token]
	if m == nil {
		return buf[:0]
	}
	return s.termAppend(m, buf[:0])
}

// termAppend materializes one term's posting list, block by block.
func (s *Segment) termAppend(m *termMeta, buf []microblog.TweetID) []microblog.TweetID {
	for i := range m.blocks {
		buf = append(buf, s.postingBlock(&m.blocks[i])...)
	}
	return buf
}

// postingBlock returns one decoded posting block, from the hot cache
// when present, decoded off the map (and cached) otherwise. The
// returned slice is cache-owned and read-only.
func (s *Segment) postingBlock(ref *blockRef) []microblog.TweetID {
	if s.cache != nil {
		if e := s.cache.get(ref.off); e != nil {
			return e.ids
		}
	}
	var start time.Time
	if s.obsReadNS != nil {
		start = time.Now()
	}
	ids, _, err := microblog.DecodePostingsBlock(
		make([]microblog.TweetID, 0, ref.n), s.data[ref.off:ref.off+ref.blen], ref.n)
	if err != nil {
		// The section checksum verified at Open covers these bytes; a
		// decode failure here means memory corruption, not input.
		panic(fmt.Sprintf("diskseg: checksummed posting block undecodable: %v", err))
	}
	if s.obsReadNS != nil {
		s.obsReadNS.Observe(time.Since(start).Nanoseconds())
	}
	if s.cache != nil {
		s.cache.put(ref.off, &cacheEntry{ids: ids})
	}
	return ids
}

// Tweet returns the post with the given segment-local id. The tweet is
// decoded as part of its block — hot blocks come from the LRU, so the
// candidate-extraction loop over a frequent term's matches runs at
// in-heap speed — and the returned pointer stays valid as long as the
// caller holds it (eviction only drops the cache's reference). Terms
// share the dictionary's strings; nothing is re-tokenized.
func (s *Segment) Tweet(id microblog.TweetID) *microblog.Tweet {
	b := int(id) / TweetBlockLen
	tws := s.tweetBlock(b)
	return &tws[int(id)%TweetBlockLen]
}

// tweetBlock returns one decoded tweet block via the hot cache.
func (s *Segment) tweetBlock(b int) []microblog.Tweet {
	sp := &s.tweetBlocks[b]
	if s.cache != nil {
		// Tweet blocks are keyed by their span offset; posting and
		// tweet offsets never collide because the sections are disjoint.
		if e := s.cache.get(sp.off); e != nil {
			return e.tws
		}
	}
	tws := s.decodeTweetBlock(b)
	if s.cache != nil {
		s.cache.put(sp.off, &cacheEntry{tws: tws})
	}
	return tws
}

// decodeTweetBlock decodes the b'th tweet block off the map.
func (s *Segment) decodeTweetBlock(b int) []microblog.Tweet {
	var start time.Time
	if s.obsReadNS != nil {
		start = time.Now()
	}
	sp := s.tweetBlocks[b]
	buf := s.data[sp.off : sp.off+sp.blen]
	lo := b * TweetBlockLen
	n := s.numTweets - lo
	if n > TweetBlockLen {
		n = TweetBlockLen
	}
	tws := make([]microblog.Tweet, n)
	for i := 0; i < n; i++ {
		tw := &tws[i]
		tw.ID = microblog.TweetID(lo + i)
		tw.Author = world.UserID(blockUvarint(&buf))
		tw.RetweetCount = int(blockUvarint(&buf))
		tw.Topic = world.TopicID(blockUvarint(&buf)) - 1
		if nm := int(blockUvarint(&buf)); nm > 0 {
			tw.Mentions = make([]world.UserID, nm)
			for j := range tw.Mentions {
				tw.Mentions[j] = world.UserID(blockUvarint(&buf))
			}
		}
		if nt := int(blockUvarint(&buf)); nt > 0 {
			tw.Terms = make([]string, nt)
			for j := range tw.Terms {
				tw.Terms[j] = s.termList[blockUvarint(&buf)]
			}
		}
		tlen := int(blockUvarint(&buf))
		tw.Text = string(buf[:tlen])
		buf = buf[tlen:]
	}
	if s.obsReadNS != nil {
		s.obsReadNS.Observe(time.Since(start).Nanoseconds())
	}
	return tws
}

// blockUvarint reads one uvarint from a checksummed tweet block.
func blockUvarint(buf *[]byte) uint64 {
	v, n := binary.Uvarint(*buf)
	if n <= 0 {
		panic("diskseg: checksummed tweet block undecodable")
	}
	*buf = (*buf)[n:]
	return v
}

// Tweets materializes every post of the segment in id order — the
// compaction path, which concatenates segments and rewrites them. It
// decodes sequentially and bypasses the hot cache so a background
// rewrite cannot evict the query path's working set.
func (s *Segment) Tweets() []microblog.Tweet {
	all := make([]microblog.Tweet, 0, s.numTweets)
	for b := range s.tweetBlocks {
		all = append(all, s.decodeTweetBlock(b)...)
	}
	return all
}

// Refs returns the current reference count (tests pin the lifecycle
// with it).
func (s *Segment) Refs() int64 { return s.refs.Load() }

// Retain takes one more reference — every published snapshot that
// includes the segment holds one, which is what pins the map against
// an unmap-under-reader when compaction drops the segment from the
// live layout.
func (s *Segment) Retain() {
	if s.refs.Add(1) <= 1 {
		panic("diskseg: Retain after final Release")
	}
}

// RemoveOnRelease arms deletion of the backing file when the last
// reference goes away — the spill directory's garbage collection.
func (s *Segment) RemoveOnRelease() { s.remove.Store(true) }

// Release drops one reference; the last release unmaps the file,
// closes it, and removes it when RemoveOnRelease was armed.
func (s *Segment) Release() {
	n := s.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("diskseg: Release without matching Retain")
	}
	s.f.Close()
	if s.remove.Load() {
		os.Remove(s.path)
	}
}

// cacheEntry is one hot decoded block: exactly one of ids (posting
// block) or tws (tweet block) is set.
type cacheEntry struct {
	key int
	ids []microblog.TweetID
	tws []microblog.Tweet
}

// blockCache is a small mutex-guarded LRU over decoded blocks, shared
// by posting and tweet blocks and keyed by the block's file offset
// (unique across both, since sections are disjoint).
type blockCache struct {
	mu  sync.Mutex
	cap int
	m   map[int]*list.Element
	ll  *list.List // front = most recently used

	hits, misses *obs.Counter
}

func newBlockCache(capacity int, reg *obs.Registry) *blockCache {
	c := &blockCache{cap: capacity, m: make(map[int]*list.Element, capacity), ll: list.New()}
	if reg != nil {
		c.hits = reg.Counter("disk_block_cache_hits")
		c.misses = reg.Counter("disk_block_cache_misses")
	}
	return c
}

// get returns the cached entry for key, promoting it, or nil.
func (c *blockCache) get(key int) *cacheEntry {
	c.mu.Lock()
	el, ok := c.m[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return nil
	}
	c.hits.Inc()
	return el.Value.(*cacheEntry)
}

// put inserts a freshly decoded block, evicting the coldest past cap.
func (c *blockCache) put(key int, e *cacheEntry) {
	e.key = key
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		// A concurrent decode of the same block won; keep the winner.
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.m[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.m, old.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()
}
