//go:build !unix

package diskseg

import (
	"io"
	"os"
)

// mmapFile falls back to reading the whole file into the heap on
// platforms without a unix mmap — the format still works, the
// beyond-RAM property does not.
func mmapFile(f *os.File) ([]byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

// munmapFile releases a heap fallback buffer (nothing to do).
func munmapFile([]byte) error { return nil }
