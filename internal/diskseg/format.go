// The on-disk sealed-segment format. One segment is one file:
//
//	header      magic, version, counts, section table, header CRC
//	stats       three little-endian uint32 arrays of numUsers entries
//	            each — posts authored, mentions received, retweets
//	            received per user; read in place, no decode
//	dict        the sorted term dictionary: per term its token bytes,
//	            total posting count and a block directory (first id +
//	            byte length per block)
//	postings    delta-varint posting blocks (microblog.PostingsBlockLen
//	            ids each), concatenated in dictionary order
//	tweetdir    little-endian uint32 byte lengths of the tweet blocks
//	tweets      varint-packed tweet records in blocks of TweetBlockLen,
//	            terms stored as dictionary ids so a decoded tweet
//	            shares the dictionary's strings
//
// Every section carries a CRC32 in the header; Open verifies all of
// them before handing out a segment, so the zero-copy read path can
// decode straight off the map without re-validating — a truncated,
// short-read or bit-flipped file fails cleanly at open time and can
// never produce a wrong posting or a wrong ranking.
package diskseg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/microblog"
	"repro/internal/world"
)

// TweetBlockLen is the number of tweet records per tweet block — the
// random-access and hot-cache granularity of Tweet.
const TweetBlockLen = 64

const (
	formatVersion = 1
	// header: magic(8) + version(4) + 4 counts(16) + 5 sections ×
	// (off u64 + len u64 + crc u32)(100) + header crc(4).
	headerSize = 8 + 4 + 16 + 5*20 + 4

	secStats    = 0
	secDict     = 1
	secPostings = 2
	secTweetDir = 3
	secTweets   = 4
	numSections = 5
)

var magic = [8]byte{'e', '#', 'd', 's', 'k', 's', 'g', '1'}

// ErrTruncated reports a file shorter than its header or section table
// claims — a short read or a partially written spill.
var ErrTruncated = errors.New("diskseg: truncated segment file")

// ErrChecksum reports a section whose stored CRC does not match its
// bytes — corruption between write and open.
var ErrChecksum = errors.New("diskseg: segment checksum mismatch")

// ErrCorrupt reports a structurally invalid segment (bad magic,
// unknown version, a count or offset that contradicts the data).
var ErrCorrupt = errors.New("diskseg: corrupt segment")

// Write rewrites a sealed in-heap segment into the on-disk format at
// path, atomically: the bytes land in path+".tmp" first and are
// renamed over path only when complete, so a crashed or failed spill
// never leaves a half-written segment where Open might find it.
func Write(path string, c *microblog.Corpus) error {
	data := Encode(c)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Encode renders a sealed corpus-backed segment into the on-disk byte
// format. Exported separately from Write so tests (and the fault
// suite) can corrupt or truncate a valid image deterministically.
func Encode(c *microblog.Corpus) []byte {
	tweets := c.Tweets()
	numUsers := c.NumUsers()

	// Term dictionary: every distinct token of every tweet, sorted.
	// The posting lists come straight from the corpus's index, which
	// the equivalence spine already proves correct.
	termSet := map[string]struct{}{}
	for i := range tweets {
		for _, tok := range tweets[i].Terms {
			termSet[tok] = struct{}{}
		}
	}
	terms := make([]string, 0, len(termSet))
	for tok := range termSet {
		terms = append(terms, tok)
	}
	sort.Strings(terms)
	termID := make(map[string]uint64, len(terms))
	for i, tok := range terms {
		termID[tok] = uint64(i)
	}

	// stats: three fixed-width arrays, read in place by the open
	// segment.
	stats := make([]byte, 12*numUsers)
	for u := 0; u < numUsers; u++ {
		binary.LittleEndian.PutUint32(stats[4*u:], uint32(c.NumTweetsBy(world.UserID(u))))
		binary.LittleEndian.PutUint32(stats[4*(numUsers+u):], uint32(c.NumMentionsOf(world.UserID(u))))
		binary.LittleEndian.PutUint32(stats[4*(2*numUsers+u):], uint32(c.NumRetweetsOf(world.UserID(u))))
	}

	// dict + postings: per term a block directory, blocks delta-varint
	// encoded in dictionary order.
	var dict, postings []byte
	for _, tok := range terms {
		ids := c.Postings(tok)
		dict = binary.AppendUvarint(dict, uint64(len(tok)))
		dict = append(dict, tok...)
		dict = binary.AppendUvarint(dict, uint64(len(ids)))
		for off := 0; off < len(ids); off += microblog.PostingsBlockLen {
			end := off + microblog.PostingsBlockLen
			if end > len(ids) {
				end = len(ids)
			}
			blockStart := len(postings)
			postings = microblog.AppendPostingsBlock(postings, ids[off:end])
			dict = binary.AppendUvarint(dict, uint64(ids[off]))
			dict = binary.AppendUvarint(dict, uint64(len(postings)-blockStart))
		}
	}

	// tweets + tweetdir: varint records in blocks of TweetBlockLen,
	// terms as dictionary ids (decoded tweets share the dictionary's
	// strings — no re-tokenization, bit-identical Terms).
	numTweetBlocks := (len(tweets) + TweetBlockLen - 1) / TweetBlockLen
	tweetDir := make([]byte, 4*numTweetBlocks)
	var tweetSec []byte
	for b := 0; b < numTweetBlocks; b++ {
		start := len(tweetSec)
		lo, hi := b*TweetBlockLen, (b+1)*TweetBlockLen
		if hi > len(tweets) {
			hi = len(tweets)
		}
		for i := lo; i < hi; i++ {
			tw := &tweets[i]
			tweetSec = binary.AppendUvarint(tweetSec, uint64(tw.Author))
			tweetSec = binary.AppendUvarint(tweetSec, uint64(tw.RetweetCount))
			tweetSec = binary.AppendUvarint(tweetSec, uint64(tw.Topic+1))
			tweetSec = binary.AppendUvarint(tweetSec, uint64(len(tw.Mentions)))
			for _, m := range tw.Mentions {
				tweetSec = binary.AppendUvarint(tweetSec, uint64(m))
			}
			tweetSec = binary.AppendUvarint(tweetSec, uint64(len(tw.Terms)))
			for _, tok := range tw.Terms {
				tweetSec = binary.AppendUvarint(tweetSec, termID[tok])
			}
			tweetSec = binary.AppendUvarint(tweetSec, uint64(len(tw.Text)))
			tweetSec = append(tweetSec, tw.Text...)
		}
		binary.LittleEndian.PutUint32(tweetDir[4*b:], uint32(len(tweetSec)-start))
	}

	// Assemble: header, then sections back to back.
	sections := [numSections][]byte{stats, dict, postings, tweetDir, tweetSec}
	total := headerSize
	for _, s := range sections {
		total += len(s)
	}
	out := make([]byte, headerSize, total)
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[8:], formatVersion)
	binary.LittleEndian.PutUint32(out[12:], uint32(len(tweets)))
	binary.LittleEndian.PutUint32(out[16:], uint32(numUsers))
	binary.LittleEndian.PutUint32(out[20:], uint32(len(terms)))
	binary.LittleEndian.PutUint32(out[24:], uint32(numTweetBlocks))
	off := uint64(headerSize)
	for i, s := range sections {
		p := 28 + 20*i
		binary.LittleEndian.PutUint64(out[p:], off)
		binary.LittleEndian.PutUint64(out[p+8:], uint64(len(s)))
		binary.LittleEndian.PutUint32(out[p+16:], crc32.ChecksumIEEE(s))
		off += uint64(len(s))
	}
	binary.LittleEndian.PutUint32(out[headerSize-4:], crc32.ChecksumIEEE(out[:headerSize-4]))
	for _, s := range sections {
		out = append(out, s...)
	}
	return out
}

// section is one parsed section table row.
type section struct {
	off, n int
}

// parseHeader validates magic, version, bounds and every section CRC,
// returning the counts and section spans. All failure modes are clean
// errors: ErrTruncated when the file is shorter than it claims,
// ErrChecksum on CRC mismatch, ErrCorrupt on structural nonsense.
func parseHeader(data []byte) (numTweets, numUsers, numTerms, numTweetBlocks int, secs [numSections]section, err error) {
	if len(data) < headerSize {
		err = fmt.Errorf("%d bytes, need %d header bytes: %w", len(data), headerSize, ErrTruncated)
		return
	}
	if string(data[:8]) != string(magic[:]) {
		err = fmt.Errorf("bad magic: %w", ErrCorrupt)
		return
	}
	if crc32.ChecksumIEEE(data[:headerSize-4]) != binary.LittleEndian.Uint32(data[headerSize-4:]) {
		err = fmt.Errorf("header: %w", ErrChecksum)
		return
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		err = fmt.Errorf("version %d, want %d: %w", v, formatVersion, ErrCorrupt)
		return
	}
	numTweets = int(binary.LittleEndian.Uint32(data[12:]))
	numUsers = int(binary.LittleEndian.Uint32(data[16:]))
	numTerms = int(binary.LittleEndian.Uint32(data[20:]))
	numTweetBlocks = int(binary.LittleEndian.Uint32(data[24:]))
	want := (numTweets + TweetBlockLen - 1) / TweetBlockLen
	if numTweetBlocks != want {
		err = fmt.Errorf("%d tweet blocks for %d tweets: %w", numTweetBlocks, numTweets, ErrCorrupt)
		return
	}
	for i := 0; i < numSections; i++ {
		p := 28 + 20*i
		off := binary.LittleEndian.Uint64(data[p:])
		n := binary.LittleEndian.Uint64(data[p+8:])
		if off > uint64(len(data)) || n > uint64(len(data))-off {
			err = fmt.Errorf("section %d [%d:+%d) past %d file bytes: %w", i, off, n, len(data), ErrTruncated)
			return
		}
		secs[i] = section{off: int(off), n: int(n)}
		if crc32.ChecksumIEEE(data[off:off+n]) != binary.LittleEndian.Uint32(data[p+16:]) {
			err = fmt.Errorf("section %d: %w", i, ErrChecksum)
			return
		}
	}
	if secs[secStats].n != 12*numUsers {
		err = fmt.Errorf("stats section %d bytes for %d users: %w", secs[secStats].n, numUsers, ErrCorrupt)
		return
	}
	if secs[secTweetDir].n != 4*numTweetBlocks {
		err = fmt.Errorf("tweetdir section %d bytes for %d blocks: %w", secs[secTweetDir].n, numTweetBlocks, ErrCorrupt)
		return
	}
	return
}
