package diskseg_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/diskseg"
	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/world"
)

// writeCorpus spills a generated tiny corpus and opens it back.
func writeCorpus(t testing.TB, opts diskseg.Options) (*microblog.Corpus, *diskseg.Segment) {
	t.Helper()
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	path := filepath.Join(t.TempDir(), "seg.esg")
	if err := diskseg.Write(path, c); err != nil {
		t.Fatal(err)
	}
	s, err := diskseg.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Release)
	return c, s
}

// vocabulary collects every distinct token of the corpus.
func vocabulary(c *microblog.Corpus) []string {
	set := map[string]struct{}{}
	for i := 0; i < c.NumTweets(); i++ {
		for _, tok := range c.Tweet(microblog.TweetID(i)).Terms {
			set[tok] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for tok := range set {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// TestRoundTripPostings pins the core property of the format: every
// posting list decodes bit-identically to the in-heap index it was
// written from, for the whole vocabulary — through the hot cache and
// with caching disabled (pure decode off the map).
func TestRoundTripPostings(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cache int
	}{{"cached", 0}, {"uncached", -1}, {"tiny-cache", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			c, s := writeCorpus(t, diskseg.Options{BlockCache: tc.cache})
			if s.NumTweets() != c.NumTweets() || s.NumUsers() != c.NumUsers() {
				t.Fatalf("counts: disk %d/%d, heap %d/%d",
					s.NumTweets(), s.NumUsers(), c.NumTweets(), c.NumUsers())
			}
			var buf []microblog.TweetID
			for _, tok := range vocabulary(c) {
				want := c.Postings(tok)
				// Twice: the second pass hits the cache (when enabled)
				// and must not differ.
				for pass := 0; pass < 2; pass++ {
					buf = s.Postings(tok, buf)
					if len(buf) != len(want) {
						t.Fatalf("%q pass %d: %d postings, want %d", tok, pass, len(buf), len(want))
					}
					for i := range want {
						if buf[i] != want[i] {
							t.Fatalf("%q pass %d: posting %d = %d, want %d", tok, pass, i, buf[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestMatchAppendEquivalence checks the MatchAppend contract against
// the corpus for single- and multi-token queries, including misses.
func TestMatchAppendEquivalence(t *testing.T) {
	c, s := writeCorpus(t, diskseg.Options{})
	vocab := vocabulary(c)
	queries := []string{"", "zzz-no-such-token", vocab[0], vocab[len(vocab)/2]}
	// Multi-token queries with real intersections: pair adjacent
	// vocabulary terms and a few real tweet texts (every tweet matches
	// its own full text).
	for i := 0; i+1 < len(vocab) && i < 40; i += 7 {
		queries = append(queries, vocab[i]+" "+vocab[i+1])
	}
	for i := 0; i < c.NumTweets() && i < 60; i += 11 {
		queries = append(queries, c.Tweet(microblog.TweetID(i)).Text)
	}
	var got, want []microblog.TweetID
	for _, q := range queries {
		want = c.MatchAppend(q, want)
		for pass := 0; pass < 2; pass++ {
			got = s.MatchAppend(q, got)
			if len(got) != len(want) {
				t.Fatalf("%q pass %d: %d matches, want %d", q, pass, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%q pass %d: match %d = %d, want %d", q, pass, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRoundTripTweetsAndStats checks every decoded tweet field the
// ranking path consumes, plus the three in-place stat tables over the
// whole user universe.
func TestRoundTripTweetsAndStats(t *testing.T) {
	c, s := writeCorpus(t, diskseg.Options{BlockCache: 3})
	for i := 0; i < c.NumTweets(); i++ {
		id := microblog.TweetID(i)
		want, got := c.Tweet(id), s.Tweet(id)
		if got.ID != want.ID || got.Author != want.Author || got.Text != want.Text ||
			got.RetweetCount != want.RetweetCount || got.Topic != want.Topic {
			t.Fatalf("tweet %d: got %+v want %+v", i, got, want)
		}
		if !reflect.DeepEqual(got.Terms, want.Terms) {
			t.Fatalf("tweet %d terms: got %v want %v", i, got.Terms, want.Terms)
		}
		if len(got.Mentions) != len(want.Mentions) || (len(want.Mentions) > 0 && !reflect.DeepEqual(got.Mentions, want.Mentions)) {
			t.Fatalf("tweet %d mentions: got %v want %v", i, got.Mentions, want.Mentions)
		}
	}
	for u := 0; u < c.NumUsers(); u++ {
		uid := world.UserID(u)
		if s.NumTweetsBy(uid) != c.NumTweetsBy(uid) ||
			s.NumMentionsOf(uid) != c.NumMentionsOf(uid) ||
			s.NumRetweetsOf(uid) != c.NumRetweetsOf(uid) {
			t.Fatalf("user %d stats: disk %d/%d/%d heap %d/%d/%d", u,
				s.NumTweetsBy(uid), s.NumMentionsOf(uid), s.NumRetweetsOf(uid),
				c.NumTweetsBy(uid), c.NumMentionsOf(uid), c.NumRetweetsOf(uid))
		}
	}
	// Tweets() materializes the same sequence (the compaction path).
	all := s.Tweets()
	if len(all) != c.NumTweets() {
		t.Fatalf("Tweets() returned %d, want %d", len(all), c.NumTweets())
	}
	for i := range all {
		if all[i].Text != c.Tweet(microblog.TweetID(i)).Text || all[i].ID != microblog.TweetID(i) {
			t.Fatalf("Tweets()[%d] mismatch", i)
		}
	}
}

// TestBlockCacheCountsAndObs pins the hot-path story: repeating one
// query hits the block cache instead of re-decoding, and the obs
// counters see exactly that.
func TestBlockCacheCountsAndObs(t *testing.T) {
	reg := obs.NewRegistry()
	c, s := writeCorpus(t, diskseg.Options{Obs: reg})
	tok := vocabulary(c)[0]
	find := func(name string) int64 {
		for _, m := range reg.Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		return 0
	}
	var buf []microblog.TweetID
	buf = s.Postings(tok, buf)
	missesAfterCold := find("disk_block_cache_misses")
	if missesAfterCold == 0 {
		t.Fatal("cold read recorded no cache misses")
	}
	if reg.Histogram("disk_read_ns").Count() == 0 {
		t.Fatal("cold read recorded no disk_read_ns observations")
	}
	hitsBefore := find("disk_block_cache_hits")
	for k := 0; k < 5; k++ {
		buf = s.Postings(tok, buf)
	}
	if find("disk_block_cache_misses") != missesAfterCold {
		t.Fatalf("hot reads decoded again: misses %d -> %d",
			missesAfterCold, find("disk_block_cache_misses"))
	}
	if find("disk_block_cache_hits") <= hitsBefore {
		t.Fatal("hot reads recorded no cache hits")
	}
}

// TestRefcountLifecycle pins the pin-against-unmap rule: Retain keeps
// the segment readable after the opener releases it, and the armed
// file removal happens only at the last Release.
func TestRefcountLifecycle(t *testing.T) {
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	path := filepath.Join(t.TempDir(), "seg.esg")
	if err := diskseg.Write(path, c); err != nil {
		t.Fatal(err)
	}
	s, err := diskseg.Open(path, diskseg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.RemoveOnRelease()
	s.Retain() // the "snapshot" reference
	if got := s.Refs(); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}

	s.Release() // the layout drops the segment (a compaction rewrote it)
	if got := s.Refs(); got != 1 {
		t.Fatalf("refs after layout release = %d, want 1", got)
	}
	// Still fully readable through the reader's pin.
	tok := vocabulary(c)[0]
	if got := s.Postings(tok, nil); len(got) != len(c.Postings(tok)) {
		t.Fatalf("pinned segment misread: %d postings, want %d", len(got), len(c.Postings(tok)))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file removed while pinned: %v", err)
	}

	s.Release() // the reader retires
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file not removed at last release: %v", err)
	}
}
