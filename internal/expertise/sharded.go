// Multi-source candidate extraction: the scatter-gather primitives the
// sharded live index (internal/shard, core.ShardedLiveDetector) builds
// on. A sharded query matches tweets independently on every shard and
// must still rank bit-identically to a single-node search over the
// union of the shards' content. Finished features cannot be merged
// after the fact — TS, MI and RI are ratios, and a user's mention
// counts span shards (a post mentioning u lives on its *author's*
// shard, and may not even match the query there) — so the scatter
// stage extracts raw integer numerators per shard (RawCandidatesInto)
// and the gather stage sums numerators per user, sums each denominator
// across every source (candidate or not, a user's denominators live
// partly on every shard), and performs each floating-point division
// exactly once, globally (MergeRawCandidates). Integer addition is
// associative, so the summed inputs equal the single-node inputs
// exactly, and the finalize math mirrors CandidatesFrom operation for
// operation.

package expertise

import (
	"math"
	"sort"

	"repro/internal/microblog"
	"repro/internal/world"
)

// RawCandidate is one user's un-finalized ranking numerators from a
// single source (shard): integer feature counts accumulated over that
// source's matched tweets. All fields are additive, so raw candidates
// for the same user from several shards merge exactly by summation.
// Denominators are deliberately absent — they are summed across every
// source at merge time, because a user's totals (mentions especially)
// live partly on shards where the user never surfaced as a candidate.
type RawCandidate struct {
	User world.UserID
	// Tweets, Mentions and Retweets are the TS/MI/RI numerators over
	// this source's matched tweets; Hashtagged backs the extended HT
	// feature and is only filled when an extended weight is set.
	Tweets, Mentions, Retweets, Hashtagged int
}

// UserStats is one user's feature denominators contributed by a single
// source: authored tweets, mentions received, retweets received. Like
// RawCandidate the fields are additive integers, so per-shard triples
// sum exactly across any partition — they are the second half of the
// scatter-gather wire contract (a shard reports numerators for its
// candidates and, on request, denominators for any user list).
type UserStats struct {
	Tweets, Mentions, Retweets int
}

// SourceStatsInto appends src's denominator triple for each user to dst
// (capacity reused, contents discarded): the batched form of the
// NumTweetsBy/NumMentionsOf/NumRetweetsOf getters that one
// gather-stage call — or one RPC — fetches for the whole candidate
// set at once.
func SourceStatsInto(dst []UserStats, src Source, users []world.UserID) []UserStats {
	dst = dst[:0]
	for _, u := range users {
		dst = append(dst, UserStats{
			Tweets:   src.NumTweetsBy(u),
			Mentions: src.NumMentionsOf(u),
			Retweets: src.NumRetweetsOf(u),
		})
	}
	return dst
}

// RawCandidatesInto extracts raw candidates from an explicit set of
// matched tweet ids resolved against src, appending to dst (reusing its
// capacity, discarding its contents) sorted by ascending user id. It is
// the per-shard scatter stage: each shard's extraction reads only that
// shard's snapshot, so shards proceed concurrently with no shared
// state. Safe for concurrent use (the per-call arena is pooled).
func (r *Ranker) RawCandidatesInto(dst []RawCandidate, src Source, matched []microblog.TweetID) []RawCandidate {
	return r.RawCandidatesModeInto(dst, src, matched, r.extendedFeatures())
}

// extendedFeatures reports whether any extended feature weight is set,
// i.e. whether extraction must also count hashtagged posts.
func (r *Ranker) extendedFeatures() bool {
	return r.params.WeightHT != 0 || r.params.WeightAV != 0 || r.params.WeightGI != 0
}

// RawCandidatesModeInto is RawCandidatesInto with the extended-feature
// collection made explicit. A transport.ShardServer extracts on behalf
// of a remote coordinator whose parameter set it does not share, so the
// request carries the flag instead of deriving it from local weights.
func (r *Ranker) RawCandidatesModeInto(dst []RawCandidate, src Source, matched []microblog.TweetID, extended bool) []RawCandidate {
	dst = dst[:0]
	if len(matched) == 0 {
		return dst
	}
	s := r.pool.Get().(*scratch)
	defer func() {
		for _, u := range s.touched {
			s.byUser[u] = counters{}
		}
		s.touched = s.touched[:0]
		r.pool.Put(s)
	}()
	get := func(u world.UserID) *counters {
		c := &s.byUser[u]
		if !c.seen {
			c.seen = true
			s.touched = append(s.touched, u)
		}
		return c
	}
	for _, tid := range matched {
		tw := src.Tweet(tid)
		a := get(tw.Author)
		a.tweets++
		a.retweets += tw.RetweetCount
		if extended && hasHashtag(tw.Terms) {
			a.hashtagged++
		}
		for _, m := range tw.Mentions {
			get(m).mentions++
		}
	}
	sort.Slice(s.touched, func(i, j int) bool { return s.touched[i] < s.touched[j] })
	for _, u := range s.touched {
		c := &s.byUser[u]
		dst = append(dst, RawCandidate{
			User:       u,
			Tweets:     c.tweets,
			Mentions:   c.mentions,
			Retweets:   c.retweets,
			Hashtagged: c.hashtagged,
		})
	}
	return dst
}

// MergeRawCandidates is the gather stage: it k-way merges per-shard raw
// candidate lists (each sorted by ascending user id, as
// RawCandidatesInto emits them; lists[i] must be extracted from
// srcs[i]), sums the numerators of users present on several shards,
// sums each user's feature denominators across every source — a user's
// authored-tweet and retweet totals live on the author's home shard,
// but mention totals are spread over every shard that holds a post
// mentioning them — and finalizes into the candidate pool Rank
// expects, appended to dst (capacity reused, contents discarded) in
// ascending user order, the same order CandidatesFrom produces and
// Rank's z-score sums depend on. With integer sums equal to the
// single-node counters and one global division per feature, the merged
// pool is bit-identical to a single-node extraction over the union of
// the sources' content.
func (r *Ranker) MergeRawCandidates(dst []Expert, srcs []Source, lists ...[]RawCandidate) []Expert {
	merged := MergeRawNumerators(nil, lists...)
	// Sum each user's denominator triple across every source. Integer
	// addition is associative, so fetching a whole shard's triples in one
	// batch (the transport-shaped call order) produces the same totals as
	// the per-user per-source getter loop this wrapper replaced.
	denoms := make([]UserStats, len(merged))
	users := make([]world.UserID, len(merged))
	for i, rc := range merged {
		users[i] = rc.User
	}
	var stats []UserStats
	for _, src := range srcs {
		stats = SourceStatsInto(stats, src, users)
		AddUserStats(denoms, stats)
	}
	var w *world.World
	if len(srcs) > 0 {
		w = srcs[0].World()
	}
	return r.FinalizeRaw(dst, merged, denoms, w)
}

// MergeRawNumerators is the integer half of the gather stage: it k-way
// merges per-shard raw candidate lists (each sorted by ascending user
// id, as RawCandidatesInto emits them), summing the numerators of users
// present on several shards, appended to dst (capacity reused, contents
// discarded) in ascending user order — the order CandidatesFrom
// produces and Rank's z-score sums depend on. No floating point is
// involved, which is what lets the merge run anywhere — in process or
// on a scatter-gather coordinator summing rows that arrived over a
// wire — with a bit-identical outcome.
func MergeRawNumerators(dst []RawCandidate, lists ...[]RawCandidate) []RawCandidate {
	dst = dst[:0]
	heads := make([]int, len(lists))
	for {
		// Find the smallest next user across the list heads. Shard
		// counts are small (a handful to a few dozen), so a linear scan
		// beats heap bookkeeping.
		var minUser world.UserID
		found := false
		for li, l := range lists {
			if heads[li] < len(l) {
				if u := l[heads[li]].User; !found || u < minUser {
					minUser, found = u, true
				}
			}
		}
		if !found {
			return dst
		}
		var sum RawCandidate
		sum.User = minUser
		for li, l := range lists {
			if heads[li] < len(l) && l[heads[li]].User == minUser {
				rc := &l[heads[li]]
				sum.Tweets += rc.Tweets
				sum.Mentions += rc.Mentions
				sum.Retweets += rc.Retweets
				sum.Hashtagged += rc.Hashtagged
				heads[li]++
			}
		}
		dst = append(dst, sum)
	}
}

// AddUserStats accumulates one source's denominator triples into the
// running totals, element-wise. add must be positionally aligned with
// dst (triple i belongs to the same user in both).
func AddUserStats(dst, add []UserStats) {
	for i := range add {
		dst[i].Tweets += add[i].Tweets
		dst[i].Mentions += add[i].Mentions
		dst[i].Retweets += add[i].Retweets
	}
}

// FinalizeRaw is the floating-point half of the gather stage: it turns
// globally summed numerators (merged, from MergeRawNumerators) and
// globally summed denominators (denoms, positionally aligned with
// merged) into the candidate pool Rank expects, appended to dst
// (capacity reused, contents discarded). Each division happens exactly
// once, with the same guards as CandidatesFrom, so the pool is
// bit-identical to a single-node extraction over the union of the
// sources' content. w supplies follower counts for the extended GI
// feature and may be nil when no extended weight is set.
func (r *Ranker) FinalizeRaw(dst []Expert, merged []RawCandidate, denoms []UserStats, w *world.World) []Expert {
	dst = dst[:0]
	extended := r.extendedFeatures()
	for i := range merged {
		sum := &merged[i]
		tot := &denoms[i]

		// Finalize with the float operations of CandidatesFrom, exactly
		// (same guards, same divisions), so the merged candidate is
		// bit-identical to its single-node counterpart.
		e := Expert{User: sum.User, OnTopicTweets: sum.Tweets}
		if tot.Tweets > 0 {
			e.TS = float64(sum.Tweets) / float64(tot.Tweets)
		}
		if tot.Mentions > 0 {
			e.MI = float64(sum.Mentions) / float64(tot.Mentions)
		}
		if tot.Retweets > 0 {
			e.RI = float64(sum.Retweets) / float64(tot.Retweets)
		}
		if extended {
			if sum.Tweets > 0 {
				e.HT = float64(sum.Hashtagged) / float64(sum.Tweets)
				e.AV = float64(sum.Retweets) / float64(sum.Tweets)
			}
			if w != nil {
				e.GI = math.Log1p(float64(w.User(sum.User).Followers))
			}
		}
		dst = append(dst, e)
	}
	return dst
}
