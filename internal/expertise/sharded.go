// Multi-source candidate extraction: the scatter-gather primitives the
// sharded live index (internal/shard, core.ShardedLiveDetector) builds
// on. A sharded query matches tweets independently on every shard and
// must still rank bit-identically to a single-node search over the
// union of the shards' content. Finished features cannot be merged
// after the fact — TS, MI and RI are ratios, and a user's mention
// counts span shards (a post mentioning u lives on its *author's*
// shard, and may not even match the query there) — so the scatter
// stage extracts raw integer numerators per shard (RawCandidatesInto)
// and the gather stage sums numerators per user, sums each denominator
// across every source (candidate or not, a user's denominators live
// partly on every shard), and performs each floating-point division
// exactly once, globally (MergeRawCandidates). Integer addition is
// associative, so the summed inputs equal the single-node inputs
// exactly, and the finalize math mirrors CandidatesFrom operation for
// operation.

package expertise

import (
	"math"
	"sort"

	"repro/internal/microblog"
	"repro/internal/world"
)

// RawCandidate is one user's un-finalized ranking numerators from a
// single source (shard): integer feature counts accumulated over that
// source's matched tweets. All fields are additive, so raw candidates
// for the same user from several shards merge exactly by summation.
// Denominators are deliberately absent — they are summed across every
// source at merge time, because a user's totals (mentions especially)
// live partly on shards where the user never surfaced as a candidate.
type RawCandidate struct {
	User world.UserID
	// Tweets, Mentions and Retweets are the TS/MI/RI numerators over
	// this source's matched tweets; Hashtagged backs the extended HT
	// feature and is only filled when an extended weight is set.
	Tweets, Mentions, Retweets, Hashtagged int
}

// RawCandidatesInto extracts raw candidates from an explicit set of
// matched tweet ids resolved against src, appending to dst (reusing its
// capacity, discarding its contents) sorted by ascending user id. It is
// the per-shard scatter stage: each shard's extraction reads only that
// shard's snapshot, so shards proceed concurrently with no shared
// state. Safe for concurrent use (the per-call arena is pooled).
func (r *Ranker) RawCandidatesInto(dst []RawCandidate, src Source, matched []microblog.TweetID) []RawCandidate {
	dst = dst[:0]
	if len(matched) == 0 {
		return dst
	}
	s := r.pool.Get().(*scratch)
	defer func() {
		for _, u := range s.touched {
			s.byUser[u] = counters{}
		}
		s.touched = s.touched[:0]
		r.pool.Put(s)
	}()
	get := func(u world.UserID) *counters {
		c := &s.byUser[u]
		if !c.seen {
			c.seen = true
			s.touched = append(s.touched, u)
		}
		return c
	}
	extended := r.params.WeightHT != 0 || r.params.WeightAV != 0 || r.params.WeightGI != 0
	for _, tid := range matched {
		tw := src.Tweet(tid)
		a := get(tw.Author)
		a.tweets++
		a.retweets += tw.RetweetCount
		if extended && hasHashtag(tw.Terms) {
			a.hashtagged++
		}
		for _, m := range tw.Mentions {
			get(m).mentions++
		}
	}
	sort.Slice(s.touched, func(i, j int) bool { return s.touched[i] < s.touched[j] })
	for _, u := range s.touched {
		c := &s.byUser[u]
		dst = append(dst, RawCandidate{
			User:       u,
			Tweets:     c.tweets,
			Mentions:   c.mentions,
			Retweets:   c.retweets,
			Hashtagged: c.hashtagged,
		})
	}
	return dst
}

// MergeRawCandidates is the gather stage: it k-way merges per-shard raw
// candidate lists (each sorted by ascending user id, as
// RawCandidatesInto emits them; lists[i] must be extracted from
// srcs[i]), sums the numerators of users present on several shards,
// sums each user's feature denominators across every source — a user's
// authored-tweet and retweet totals live on the author's home shard,
// but mention totals are spread over every shard that holds a post
// mentioning them — and finalizes into the candidate pool Rank
// expects, appended to dst (capacity reused, contents discarded) in
// ascending user order, the same order CandidatesFrom produces and
// Rank's z-score sums depend on. With integer sums equal to the
// single-node counters and one global division per feature, the merged
// pool is bit-identical to a single-node extraction over the union of
// the sources' content.
func (r *Ranker) MergeRawCandidates(dst []Expert, srcs []Source, lists ...[]RawCandidate) []Expert {
	dst = dst[:0]
	heads := make([]int, len(lists))
	extended := r.params.WeightHT != 0 || r.params.WeightAV != 0 || r.params.WeightGI != 0
	var w *world.World
	if extended && len(srcs) > 0 {
		w = srcs[0].World()
	}
	for {
		// Find the smallest next user across the list heads. Shard
		// counts are small (a handful to a few dozen), so a linear scan
		// beats heap bookkeeping.
		var minUser world.UserID
		found := false
		for li, l := range lists {
			if heads[li] < len(l) {
				if u := l[heads[li]].User; !found || u < minUser {
					minUser, found = u, true
				}
			}
		}
		if !found {
			return dst
		}
		var sum RawCandidate
		sum.User = minUser
		for li, l := range lists {
			if heads[li] < len(l) && l[heads[li]].User == minUser {
				rc := &l[heads[li]]
				sum.Tweets += rc.Tweets
				sum.Mentions += rc.Mentions
				sum.Retweets += rc.Retweets
				sum.Hashtagged += rc.Hashtagged
				heads[li]++
			}
		}
		var totTweets, totMentions, totRetweets int
		for _, src := range srcs {
			totTweets += src.NumTweetsBy(minUser)
			totMentions += src.NumMentionsOf(minUser)
			totRetweets += src.NumRetweetsOf(minUser)
		}

		// Finalize with the float operations of CandidatesFrom, exactly
		// (same guards, same divisions), so the merged candidate is
		// bit-identical to its single-node counterpart.
		e := Expert{User: sum.User, OnTopicTweets: sum.Tweets}
		if totTweets > 0 {
			e.TS = float64(sum.Tweets) / float64(totTweets)
		}
		if totMentions > 0 {
			e.MI = float64(sum.Mentions) / float64(totMentions)
		}
		if totRetweets > 0 {
			e.RI = float64(sum.Retweets) / float64(totRetweets)
		}
		if extended {
			if sum.Tweets > 0 {
				e.HT = float64(sum.Hashtagged) / float64(sum.Tweets)
				e.AV = float64(sum.Retweets) / float64(sum.Tweets)
			}
			if w != nil {
				e.GI = math.Log1p(float64(w.User(sum.User).Followers))
			}
		}
		dst = append(dst, e)
	}
}
