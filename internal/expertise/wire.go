// Wire encoding of the scatter-gather exchange rows. The sharded read
// path is transport-shaped by construction — RawCandidate and UserStats
// carry only additive integer counters, no floats and no shared memory
// — so this file is all that is needed to move the per-shard merge
// inputs across a process boundary: a compact varint encoding with
// delta-compressed user ids (both row kinds travel sorted or
// positionally aligned to a sorted user list). internal/transport
// frames these encodings; the decoders never trust a length field
// further than the bytes actually present, so an adversarial frame can
// neither panic the decoder nor make it over-allocate.

package expertise

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/world"
)

// ErrWireTruncated reports an encoding that ends mid-row or whose
// element count exceeds the bytes that follow it.
var ErrWireTruncated = errors.New("expertise: truncated wire encoding")

// AppendRawCandidates appends a length-prefixed encoding of rcs to buf:
// a row count, then per row the user id (delta-encoded against the
// previous row — the lists travel sorted by ascending user) and the
// four numerator counters, all uvarints.
func AppendRawCandidates(buf []byte, rcs []RawCandidate) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rcs)))
	prev := uint64(0)
	for i := range rcs {
		u := uint64(rcs[i].User)
		buf = binary.AppendUvarint(buf, u-prev)
		prev = u
		buf = binary.AppendUvarint(buf, uint64(rcs[i].Tweets))
		buf = binary.AppendUvarint(buf, uint64(rcs[i].Mentions))
		buf = binary.AppendUvarint(buf, uint64(rcs[i].Retweets))
		buf = binary.AppendUvarint(buf, uint64(rcs[i].Hashtagged))
	}
	return buf
}

// ConsumeRawCandidates decodes an AppendRawCandidates encoding from the
// front of buf, appending rows to dst (capacity reused, contents
// discarded), and returns the filled slice plus the remaining bytes.
// The claimed row count is validated against the bytes present (every
// row occupies at least five bytes) before anything is allocated.
func ConsumeRawCandidates(dst []RawCandidate, buf []byte) ([]RawCandidate, []byte, error) {
	dst = dst[:0]
	n, buf, err := consumeCount(buf, 5)
	if err != nil {
		return dst, buf, fmt.Errorf("raw candidates: %w", err)
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		var fields [5]uint64
		for f := range fields {
			fields[f], buf, err = consumeUvarint(buf)
			if err != nil {
				return dst, buf, fmt.Errorf("raw candidate row %d: %w", i, err)
			}
		}
		prev += fields[0]
		dst = append(dst, RawCandidate{
			User:       world.UserID(prev),
			Tweets:     int(fields[1]),
			Mentions:   int(fields[2]),
			Retweets:   int(fields[3]),
			Hashtagged: int(fields[4]),
		})
	}
	return dst, buf, nil
}

// AppendUserStats appends a length-prefixed encoding of the denominator
// triples to buf. The rows are positionally aligned with the request's
// user list, so no user ids travel — just a count and three uvarints
// per row.
func AppendUserStats(buf []byte, stats []UserStats) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(stats)))
	for i := range stats {
		buf = binary.AppendUvarint(buf, uint64(stats[i].Tweets))
		buf = binary.AppendUvarint(buf, uint64(stats[i].Mentions))
		buf = binary.AppendUvarint(buf, uint64(stats[i].Retweets))
	}
	return buf
}

// ConsumeUserStats decodes an AppendUserStats encoding from the front
// of buf, appending triples to dst (capacity reused, contents
// discarded), and returns the filled slice plus the remaining bytes.
func ConsumeUserStats(dst []UserStats, buf []byte) ([]UserStats, []byte, error) {
	dst = dst[:0]
	n, buf, err := consumeCount(buf, 3)
	if err != nil {
		return dst, buf, fmt.Errorf("user stats: %w", err)
	}
	for i := 0; i < n; i++ {
		var fields [3]uint64
		for f := range fields {
			fields[f], buf, err = consumeUvarint(buf)
			if err != nil {
				return dst, buf, fmt.Errorf("user stats row %d: %w", i, err)
			}
		}
		dst = append(dst, UserStats{
			Tweets:   int(fields[0]),
			Mentions: int(fields[1]),
			Retweets: int(fields[2]),
		})
	}
	return dst, buf, nil
}

// AppendUserIDs appends a length-prefixed, delta-compressed encoding of
// an ascending user id list to buf — the stats request's payload.
func AppendUserIDs(buf []byte, users []world.UserID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(users)))
	prev := uint64(0)
	for _, u := range users {
		buf = binary.AppendUvarint(buf, uint64(u)-prev)
		prev = uint64(u)
	}
	return buf
}

// ConsumeUserIDs decodes an AppendUserIDs encoding from the front of
// buf, appending ids to dst (capacity reused, contents discarded), and
// returns the filled slice plus the remaining bytes.
func ConsumeUserIDs(dst []world.UserID, buf []byte) ([]world.UserID, []byte, error) {
	dst = dst[:0]
	n, buf, err := consumeCount(buf, 1)
	if err != nil {
		return dst, buf, fmt.Errorf("user ids: %w", err)
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		var d uint64
		d, buf, err = consumeUvarint(buf)
		if err != nil {
			return dst, buf, fmt.Errorf("user id %d: %w", i, err)
		}
		prev += d
		dst = append(dst, world.UserID(prev))
	}
	return dst, buf, nil
}

// consumeCount reads an element count and rejects it unless the
// remaining bytes could plausibly hold that many elements of at least
// minBytes each — the over-allocation guard: a hostile count can never
// drive an allocation past the data actually received.
func consumeCount(buf []byte, minBytes int) (int, []byte, error) {
	n, buf, err := consumeUvarint(buf)
	if err != nil {
		return 0, buf, err
	}
	if n > uint64(len(buf)/minBytes) {
		return 0, buf, fmt.Errorf("count %d exceeds payload: %w", n, ErrWireTruncated)
	}
	return int(n), buf, nil
}

// consumeUvarint reads one uvarint off the front of buf.
func consumeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, buf, ErrWireTruncated
	}
	return v, buf[n:], nil
}
