// Package expertise implements the paper's baseline expert detector: the
// production simplification of Pal & Counts (WSDM'11) described in
// Section 3. Candidate selection takes the authors of matching tweets
// and the users mentioned in them; ranking uses three features —
// topical signal (TS), mention impact (MI) and retweet impact (RI) —
// log-transformed (the features are log-normally distributed),
// z-score-normalized over the candidate set, and aggregated with a
// weighted sum. A minimum aggregate z-score rejects weak candidates
// (the precision/recall knob of Figure 9).
//
// Pal & Counts' optional cluster-analysis filtering step, which the
// paper discards as "computationally expensive and contrary to our
// objective of improving recall", is implemented behind
// Params.ClusterFilter for the ablation benchmarks, and is off by
// default exactly as in the paper.
package expertise

import (
	"math"
	"sort"
	"sync"

	"repro/internal/microblog"
	"repro/internal/world"
)

// Params tunes the detector.
type Params struct {
	// WeightTS, WeightMI and WeightRI aggregate the normalized features.
	// The paper defers to "the authors' guidelines"; Pal & Counts weigh
	// the topical signal highest, which these defaults encode.
	WeightTS, WeightMI, WeightRI float64
	// WeightHT, WeightGI and WeightAV enable the extended features from
	// the original Pal & Counts feature set that the e# paper dropped
	// for production ("they evaluate a dozen features; we kept those
	// which they present as important"). All default to zero, matching
	// the paper; ExtendedParams turns them on for the ablation suite.
	//
	//   HT — hashtag ratio of the user's on-topic posts
	//   GI — graph influence (log follower count)
	//   AV — average retweets per on-topic post
	WeightHT, WeightGI, WeightAV float64
	// MinZScore rejects candidates whose aggregate score falls below it.
	MinZScore float64
	// MaxResults caps the returned list (the crowdsourcing study used up
	// to 15 experts per algorithm). Zero means unlimited.
	MaxResults int
	// ClusterFilter enables Pal & Counts' optional cluster-based
	// filtering step (2-means on the aggregate score, keep the upper
	// cluster). Discarded by the paper; present for ablation.
	ClusterFilter bool
	// Epsilon smooths the log transform of zero-valued features.
	Epsilon float64
}

// DefaultParams returns the defaults used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		WeightTS:   0.5,
		WeightMI:   0.25,
		WeightRI:   0.25,
		MinZScore:  0,
		MaxResults: 15,
		Epsilon:    1e-4,
	}
}

// ExtendedParams returns the defaults with the extended feature set
// enabled — the configuration the e# paper simplified away.
func ExtendedParams() Params {
	p := DefaultParams()
	p.WeightTS, p.WeightMI, p.WeightRI = 0.4, 0.2, 0.2
	p.WeightHT, p.WeightGI, p.WeightAV = 0.05, 0.1, 0.05
	return p
}

// Expert is one ranked result.
type Expert struct {
	User world.UserID
	// Score is the aggregate z-score used for ranking and thresholding.
	Score float64
	// TS, MI and RI are the raw feature values (before log/z transform).
	TS, MI, RI float64
	// HT, GI and AV are the extended raw features (zero-weighted by
	// default; see Params).
	HT, GI, AV float64
	// OnTopicTweets is the number of matching tweets the user authored.
	OnTopicTweets int
}

// counters accumulates the per-user raw feature inputs for one query.
type counters struct {
	tweets, mentions, retweets, hashtagged int
	seen                                   bool
}

// scratch is the reusable per-call arena of CandidatesFrom: a dense
// counter table indexed by UserID plus the list of users actually
// touched, so resets cost O(touched) instead of O(users).
type scratch struct {
	byUser  []counters
	touched []world.UserID
}

// Source is the read-only index view candidate extraction runs
// against: per-tweet content plus the per-user denominators of the
// three ranking features. A frozen *microblog.Corpus satisfies it
// directly; a live multi-segment snapshot (internal/ingest) satisfies
// it by summing base, sealed-segment and active-tail counters — the
// cross-segment ranking path of the streaming index.
type Source interface {
	Tweet(id microblog.TweetID) *microblog.Tweet
	NumTweetsBy(u world.UserID) int
	NumMentionsOf(u world.UserID) int
	NumRetweetsOf(u world.UserID) int
	NumUsers() int
	World() *world.World
}

// Ranker is the source-independent scoring core: candidate extraction
// and ranking under one parameter set, with a pooled per-query arena.
// One Ranker serves any number of Sources over the same user universe
// (the live index passes a fresh snapshot per query), so it is the
// piece Detector and the streaming path share. Safe for concurrent use.
type Ranker struct {
	params Params
	pool   sync.Pool // of *scratch sized to the user universe
}

// NewRanker builds a ranker for a universe of numUsers users.
// Zero-valued weights are allowed (a feature can be ablated away); if
// all three are zero the defaults are restored.
func NewRanker(numUsers int, params Params) *Ranker {
	if params.WeightTS == 0 && params.WeightMI == 0 && params.WeightRI == 0 {
		d := DefaultParams()
		params.WeightTS, params.WeightMI, params.WeightRI = d.WeightTS, d.WeightMI, d.WeightRI
	}
	if params.Epsilon <= 0 {
		params.Epsilon = 1e-4
	}
	r := &Ranker{params: params}
	r.pool.New = func() any {
		return &scratch{byUser: make([]counters, numUsers)}
	}
	return r
}

// Params returns the ranker's configuration.
func (r *Ranker) Params() Params { return r.params }

// Detector ranks expert candidates over a corpus. It is safe for
// concurrent use: the corpus is read-only and per-query scratch state
// is pooled per goroutine.
type Detector struct {
	corpus *microblog.Corpus
	ranker *Ranker
}

// New builds a detector over a frozen corpus (see NewRanker for the
// weight handling).
func New(corpus *microblog.Corpus, params Params) *Detector {
	return &Detector{corpus: corpus, ranker: NewRanker(corpus.NumUsers(), params)}
}

// Params returns the detector's configuration.
func (d *Detector) Params() Params { return d.ranker.params }

// Ranker returns the underlying scoring core.
func (d *Detector) Ranker() *Ranker { return d.ranker }

// Search returns the ranked experts for a query, or nil when no tweet
// matches. The result is sorted by descending score, ties broken by
// user id, truncated to MaxResults and thresholded at MinZScore.
func (d *Detector) Search(query string) []Expert {
	candidates := d.Candidates(query)
	return d.ranker.Rank(candidates)
}

// Candidates runs candidate selection and feature extraction without
// normalization or thresholding.
func (d *Detector) Candidates(query string) []Expert {
	return d.CandidatesFromTweets(d.corpus.Match(query))
}

// CandidatesFromTweets extracts candidates and raw features from an
// explicit set of matching tweets. Exposed so the e# pipeline can union
// the matched-tweet sets of all expanded terms first (Section 5: "union
// the results and rank the experts") and then extract features exactly
// once per tweet — no double counting when two expansion terms match the
// same post.
func (d *Detector) CandidatesFromTweets(matched []microblog.TweetID) []Expert {
	return d.ranker.CandidatesFrom(d.corpus, matched)
}

// CandidatesFrom extracts candidates and raw features from an explicit
// set of matching tweet ids resolved against src. The live index calls
// it with a multi-segment snapshot whose matched ids span the base
// corpus, sealed segments and the active tail.
func (r *Ranker) CandidatesFrom(src Source, matched []microblog.TweetID) []Expert {
	if len(matched) == 0 {
		return nil
	}
	s := r.pool.Get().(*scratch)
	defer func() {
		// O(touched) reset keeps the arena reusable without zeroing the
		// whole user table.
		for _, u := range s.touched {
			s.byUser[u] = counters{}
		}
		s.touched = s.touched[:0]
		r.pool.Put(s)
	}()
	get := func(u world.UserID) *counters {
		c := &s.byUser[u]
		if !c.seen {
			c.seen = true
			s.touched = append(s.touched, u)
		}
		return c
	}
	extended := r.params.WeightHT != 0 || r.params.WeightAV != 0 || r.params.WeightGI != 0
	for _, tid := range matched {
		tw := src.Tweet(tid)
		a := get(tw.Author)
		a.tweets++
		a.retweets += tw.RetweetCount
		if extended && hasHashtag(tw.Terms) {
			a.hashtagged++
		}
		for _, m := range tw.Mentions {
			get(m).mentions++
		}
	}
	sort.Slice(s.touched, func(i, j int) bool { return s.touched[i] < s.touched[j] })
	out := make([]Expert, 0, len(s.touched))
	for _, u := range s.touched {
		c := &s.byUser[u]
		e := Expert{User: u, OnTopicTweets: c.tweets}
		if total := src.NumTweetsBy(u); total > 0 {
			e.TS = float64(c.tweets) / float64(total)
		}
		if total := src.NumMentionsOf(u); total > 0 {
			e.MI = float64(c.mentions) / float64(total)
		}
		if total := src.NumRetweetsOf(u); total > 0 {
			e.RI = float64(c.retweets) / float64(total)
		}
		if extended {
			if c.tweets > 0 {
				e.HT = float64(c.hashtagged) / float64(c.tweets)
				e.AV = float64(c.retweets) / float64(c.tweets)
			}
			e.GI = math.Log1p(float64(src.World().User(u).Followers))
		}
		out = append(out, e)
	}
	return out
}

// Rank normalizes, scores, thresholds and sorts a candidate pool. It is
// exported for the e# pipeline, which unions candidate pools across the
// expanded terms first (Section 5: "union the results and rank the
// experts").
func (d *Detector) Rank(candidates []Expert) []Expert {
	return d.ranker.Rank(candidates)
}

// Rank normalizes, scores, thresholds and sorts a candidate pool.
func (r *Ranker) Rank(candidates []Expert) []Expert {
	if len(candidates) == 0 {
		return nil
	}
	n := len(candidates)
	logTS := make([]float64, n)
	logMI := make([]float64, n)
	logRI := make([]float64, n)
	for i, e := range candidates {
		logTS[i] = math.Log(e.TS + r.params.Epsilon)
		logMI[i] = math.Log(e.MI + r.params.Epsilon)
		logRI[i] = math.Log(e.RI + r.params.Epsilon)
	}
	zTS := zscores(logTS)
	zMI := zscores(logMI)
	zRI := zscores(logRI)

	wSum := r.params.WeightTS + r.params.WeightMI + r.params.WeightRI +
		r.params.WeightHT + r.params.WeightGI + r.params.WeightAV
	scored := make([]Expert, n)
	copy(scored, candidates)
	for i := range scored {
		scored[i].Score = (r.params.WeightTS*zTS[i] +
			r.params.WeightMI*zMI[i] +
			r.params.WeightRI*zRI[i]) / wSum
	}
	if r.params.WeightHT != 0 || r.params.WeightGI != 0 || r.params.WeightAV != 0 {
		logHT := make([]float64, n)
		logGI := make([]float64, n)
		logAV := make([]float64, n)
		for i, e := range candidates {
			logHT[i] = math.Log(e.HT + r.params.Epsilon)
			logGI[i] = e.GI // already log follower count
			logAV[i] = math.Log(e.AV + r.params.Epsilon)
		}
		zHT := zscores(logHT)
		zGI := zscores(logGI)
		zAV := zscores(logAV)
		for i := range scored {
			scored[i].Score += (r.params.WeightHT*zHT[i] +
				r.params.WeightGI*zGI[i] +
				r.params.WeightAV*zAV[i]) / wSum
		}
	}

	if r.params.ClusterFilter && n >= 4 {
		scored = clusterFilter(scored)
	}

	// Threshold, then select. When MaxResults caps the output, a bounded
	// top-k heap avoids fully sorting the candidate pool; the ranking
	// order (descending score, ties toward the smaller user id) is total,
	// so the selection is bit-identical to sort-then-truncate.
	kept := scored[:0]
	for _, e := range scored {
		if e.Score >= r.params.MinZScore {
			kept = append(kept, e)
		}
	}
	if k := r.params.MaxResults; k > 0 && len(kept) > k {
		kept = selectTopK(kept, k)
	} else {
		sort.Slice(kept, func(i, j int) bool { return rankedBefore(&kept[i], &kept[j]) })
	}
	out := make([]Expert, len(kept))
	copy(out, kept)
	if len(out) == 0 {
		return nil
	}
	return out
}

// rankedBefore is the total ranking order: descending score, ties
// broken toward the smaller user id.
func rankedBefore(a, b *Expert) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.User < b.User
}

// selectTopK returns the k best experts of pool under rankedBefore, in
// rank order, without sorting the whole pool. It maintains a size-k
// heap whose root is the worst retained element; the final heap-sort
// pass emits the survivors best-first. pool is reordered in place and
// the result aliases its front.
func selectTopK(pool []Expert, k int) []Expert {
	h := pool[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftWorstDown(h, i)
	}
	for i := k; i < len(pool); i++ {
		if rankedBefore(&pool[i], &h[0]) {
			h[0] = pool[i]
			siftWorstDown(h, 0)
		}
	}
	for n := k - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		siftWorstDown(h[:n], 0)
	}
	return h
}

// siftWorstDown restores the heap property (every parent ranks after
// its children) below index i.
func siftWorstDown(h []Expert, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		worst := l
		if r := l + 1; r < len(h) && rankedBefore(&h[l], &h[r]) {
			worst = r
		}
		if !rankedBefore(&h[i], &h[worst]) {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// hasHashtag reports whether any token is a hashtag.
func hasHashtag(tokens []string) bool {
	for _, t := range tokens {
		if len(t) > 1 && t[0] == '#' {
			return true
		}
	}
	return false
}

// zscores standardizes a vector: (x - mean) / stddev. A zero standard
// deviation (all candidates identical) yields all-zero scores.
func zscores(xs []float64) []float64 {
	n := float64(len(xs))
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	std := math.Sqrt(sq / n)
	out := make([]float64, len(xs))
	if std == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mean) / std
	}
	return out
}

// clusterFilter is Pal & Counts' optional filtering step: a
// deterministic 1-D 2-means over the aggregate scores; only the upper
// cluster survives. Centroids initialize at min and max, so the
// procedure needs no randomness.
func clusterFilter(scored []Expert) []Expert {
	lo, hi := scored[0].Score, scored[0].Score
	for _, e := range scored {
		if e.Score < lo {
			lo = e.Score
		}
		if e.Score > hi {
			hi = e.Score
		}
	}
	if lo == hi {
		return scored
	}
	cLo, cHi := lo, hi
	assign := make([]bool, len(scored)) // true = upper cluster
	for iter := 0; iter < 50; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		changed := false
		for i, e := range scored {
			upper := math.Abs(e.Score-cHi) < math.Abs(e.Score-cLo)
			if upper != assign[i] {
				assign[i] = upper
				changed = true
			}
			if upper {
				sumHi += e.Score
				nHi++
			} else {
				sumLo += e.Score
				nLo++
			}
		}
		if nLo > 0 {
			cLo = sumLo / float64(nLo)
		}
		if nHi > 0 {
			cHi = sumHi / float64(nHi)
		}
		if !changed {
			break
		}
	}
	var out []Expert
	for i, e := range scored {
		if assign[i] {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return scored
	}
	return out
}

// UnionTweets merges several sorted matched-tweet id lists into one
// sorted, duplicate-free list. It is the "union the results" step of
// the e# online stage. The online hot path uses the buffer-reusing
// MergeTweetsInto instead; this map-based form is kept as the
// reference implementation the equivalence tests check against.
func UnionTweets(lists ...[]microblog.TweetID) []microblog.TweetID {
	seen := map[microblog.TweetID]bool{}
	var out []microblog.TweetID
	for _, l := range lists {
		for _, id := range l {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MergeTweets k-way merges ascending-sorted tweet id lists into one
// sorted, duplicate-free list appended to dst (reusing its capacity,
// discarding its contents). It produces exactly UnionTweets' output
// without the per-id map. Hot-path callers should prefer
// MergeTweetsInto, which also reuses the merge-frontier buffer.
func MergeTweets(dst []microblog.TweetID, lists ...[]microblog.TweetID) []microblog.TweetID {
	dst, _ = MergeTweetsInto(dst, nil, lists...)
	return dst
}

// MergeTweetsInto is the scratch-reusing form of MergeTweets: frontier
// is a reusable buffer for the merge's head table (its contents are
// discarded, its capacity reused, and the possibly-grown buffer is
// returned for the next call). The merge itself is a min-heap over the
// list heads: ids come out ascending, so equal ids from different
// lists arrive consecutively and deduplicate against the last emitted
// id.
func MergeTweetsInto(dst []microblog.TweetID, frontier [][]microblog.TweetID,
	lists ...[]microblog.TweetID) ([]microblog.TweetID, [][]microblog.TweetID) {

	dst = dst[:0]
	// Drop empty lists; single-list unions degenerate to a copy.
	heads := frontier[:0]
	for _, l := range lists {
		if len(l) > 0 {
			heads = append(heads, l)
		}
	}
	frontier = heads
	switch len(heads) {
	case 0:
		return dst, frontier
	case 1:
		return append(dst, heads[0]...), frontier
	}
	// Min-heap over the first element of each remaining list.
	less := func(a, b []microblog.TweetID) bool { return a[0] < b[0] }
	sift := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heads) {
				return
			}
			min := l
			if r := l + 1; r < len(heads) && less(heads[r], heads[l]) {
				min = r
			}
			if !less(heads[min], heads[i]) {
				return
			}
			heads[i], heads[min] = heads[min], heads[i]
			i = min
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		sift(i)
	}
	for len(heads) > 0 {
		id := heads[0][0]
		if len(dst) == 0 || dst[len(dst)-1] != id {
			dst = append(dst, id)
		}
		if rest := heads[0][1:]; len(rest) > 0 {
			heads[0] = rest
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		sift(0)
	}
	return dst, frontier
}
