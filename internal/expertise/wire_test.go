package expertise

import (
	"testing"

	"repro/internal/microblog"
	"repro/internal/world"
)

// TestWireRoundTrips pins the codec: every row kind survives
// encode→decode bit-for-bit, including empty lists, and trailing bytes
// are handed back untouched.
func TestWireRoundTrips(t *testing.T) {
	rcs := []RawCandidate{
		{User: 0, Tweets: 1},
		{User: 3, Tweets: 2, Mentions: 5, Retweets: 700, Hashtagged: 1},
		{User: 4096, Retweets: 1 << 20},
	}
	buf := AppendRawCandidates(nil, rcs)
	buf = append(buf, 0xAA, 0xBB) // trailing bytes must survive
	got, rest, err := ConsumeRawCandidates(nil, buf)
	if err != nil || len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("raw candidates: err %v rest %v", err, rest)
	}
	if len(got) != len(rcs) {
		t.Fatalf("raw candidates: %d rows, want %d", len(got), len(rcs))
	}
	for i := range rcs {
		if got[i] != rcs[i] {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], rcs[i])
		}
	}
	if got, rest, err := ConsumeRawCandidates(nil, AppendRawCandidates(nil, nil)); err != nil || len(got) != 0 || len(rest) != 0 {
		t.Fatalf("empty list: %v %v %v", got, rest, err)
	}

	stats := []UserStats{{}, {Tweets: 3, Mentions: 1, Retweets: 9}}
	gotStats, _, err := ConsumeUserStats(nil, AppendUserStats(nil, stats))
	if err != nil || len(gotStats) != 2 || gotStats[1] != stats[1] {
		t.Fatalf("user stats: %v %v", gotStats, err)
	}

	ids := []world.UserID{0, 1, 1, 40, 40, 500}
	gotIDs, _, err := ConsumeUserIDs(nil, AppendUserIDs(nil, ids))
	if err != nil || len(gotIDs) != len(ids) {
		t.Fatalf("user ids: %v %v", gotIDs, err)
	}
	for i := range ids {
		if gotIDs[i] != ids[i] {
			t.Fatalf("id %d: %d vs %d", i, gotIDs[i], ids[i])
		}
	}
}

// TestWireRejectsTruncationEverywhere cuts a valid encoding at every
// byte offset and requires a clean error (never a panic, never a
// silently short row set presented as complete with trailing garbage
// consumed).
func TestWireRejectsTruncationEverywhere(t *testing.T) {
	rcs := []RawCandidate{{User: 77, Tweets: 300, Mentions: 2, Retweets: 9000, Hashtagged: 1}, {User: 1 << 18}}
	whole := AppendRawCandidates(nil, rcs)
	for cut := 0; cut < len(whole); cut++ {
		if _, _, err := ConsumeRawCandidates(nil, whole[:cut]); err == nil {
			// A cut that still decodes must be impossible: the count
			// promises two rows and the bytes are not all there.
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(whole))
		}
	}
	statsWhole := AppendUserStats(nil, []UserStats{{Tweets: 1 << 20, Mentions: 3, Retweets: 4}})
	for cut := 0; cut < len(statsWhole); cut++ {
		if _, _, err := ConsumeUserStats(nil, statsWhole[:cut]); err == nil {
			t.Fatalf("stats truncation at %d decoded cleanly", cut)
		}
	}
	// A count field claiming far more rows than the payload holds must
	// fail before allocating.
	if _, _, err := ConsumeUserIDs(nil, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x07}); err == nil {
		t.Fatal("absurd id count accepted")
	}
}

// TestGatherPiecesMatchMergeRawCandidates pins the restructured gather
// stage against its one-call ancestor: MergeRawNumerators + per-source
// SourceStatsInto/AddUserStats + FinalizeRaw must equal
// MergeRawCandidates exactly — same users, same floats — because the
// scatter-gather coordinator now runs the pieces (with the stats leg
// batched per shard, possibly over a wire) instead of the wrapper.
func TestGatherPiecesMatchMergeRawCandidates(t *testing.T) {
	w := world.Build(world.TinyConfig())
	corpus := microblog.Generate(w, microblog.TinyGenConfig())
	half := microblog.TweetID(corpus.NumTweets() / 2)
	r := NewRanker(corpus.NumUsers(), DefaultParams())

	var matchedA, matchedB []microblog.TweetID
	for id := microblog.TweetID(0); int(id) < corpus.NumTweets(); id++ {
		if id < half {
			matchedA = append(matchedA, id)
		} else {
			matchedB = append(matchedB, id)
		}
	}
	listA := r.RawCandidatesInto(nil, corpus, matchedA)
	listB := r.RawCandidatesInto(nil, corpus, matchedB)

	srcs := []Source{corpus, corpus}
	want := r.MergeRawCandidates(nil, srcs, listA, listB)

	merged := MergeRawNumerators(nil, listA, listB)
	users := make([]world.UserID, len(merged))
	for i := range merged {
		users[i] = merged[i].User
	}
	denoms := make([]UserStats, len(merged))
	for _, src := range srcs {
		AddUserStats(denoms, SourceStatsInto(nil, src, users))
	}
	got := r.FinalizeRaw(nil, merged, denoms, w)

	if len(got) != len(want) {
		t.Fatalf("%d candidates, wrapper produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
