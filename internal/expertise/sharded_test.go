package expertise

import (
	"testing"

	"repro/internal/microblog"
	"repro/internal/world"
)

// queriesForRawTests spans answered, mention-heavy and unanswerable
// shapes.
var rawTestQueries = []string{"49ers", "diabetes", "nfl", "coffee", "dow", "zzz-none"}

func expertsEqual(t *testing.T, label string, got, want []Expert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: candidate %d differs:\n  got  %+v\n  want %+v", label, i, got[i], want[i])
		}
	}
}

// TestRawMergeSingleSourceEqualsCandidatesFrom pins the degenerate
// scatter-gather: extracting raw candidates from one source and merging
// the single list must reproduce CandidatesFrom bit for bit — same
// users, same float features, same order — under both the production
// and the extended feature set.
func TestRawMergeSingleSourceEqualsCandidatesFrom(t *testing.T) {
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	for _, params := range []Params{DefaultParams(), ExtendedParams()} {
		r := NewRanker(c.NumUsers(), params)
		for _, q := range rawTestQueries {
			matched := c.Match(q)
			want := r.CandidatesFrom(c, matched)
			raw := r.RawCandidatesInto(nil, c, matched)
			got := r.MergeRawCandidates(nil, []Source{c}, raw)
			if len(want) == 0 {
				if len(got) != 0 {
					t.Fatalf("%q: merge produced %d candidates from empty match", q, len(got))
				}
				continue
			}
			expertsEqual(t, "candidates "+q, got, want)
			expertsEqual(t, "ranked "+q, r.Rank(got), r.Rank(want))
		}
	}
}

// TestRawMergePartitionedEqualsWhole is the heart of the sharded
// correctness argument: split a corpus's tweets by author across two
// sources, extract raw candidates per source from per-source matches,
// merge — the result must be bit-identical to a single-source
// extraction over the whole corpus. This exercises the cross-shard
// case the ratio features cannot survive naively: a user mentioned on
// both sides has mention numerators and denominators on both, and only
// the integer sums divide to the global ratio.
func TestRawMergePartitionedEqualsWhole(t *testing.T) {
	w := world.Build(world.TinyConfig())
	whole := microblog.Generate(w, microblog.TinyGenConfig())

	var parts [2][]microblog.Tweet
	for _, tw := range whole.Tweets() {
		parts[int(tw.Author)%2] = append(parts[int(tw.Author)%2], tw)
	}
	shards := [2]*microblog.Corpus{
		microblog.FromTweets(w, parts[0]),
		microblog.FromTweets(w, parts[1]),
	}

	for _, params := range []Params{DefaultParams(), ExtendedParams()} {
		r := NewRanker(whole.NumUsers(), params)
		for _, q := range rawTestQueries {
			want := r.CandidatesFrom(whole, whole.Match(q))
			raw0 := r.RawCandidatesInto(nil, shards[0], shards[0].Match(q))
			raw1 := r.RawCandidatesInto(nil, shards[1], shards[1].Match(q))
			got := r.MergeRawCandidates(nil, []Source{shards[0], shards[1]}, raw0, raw1)
			if len(want) == 0 {
				if len(got) != 0 {
					t.Fatalf("%q: merge produced %d candidates from empty match", q, len(got))
				}
				continue
			}
			expertsEqual(t, "partitioned candidates "+q, got, want)
			expertsEqual(t, "partitioned ranked "+q, r.Rank(got), r.Rank(want))
		}
	}
}

// TestRawCandidatesBufferReuse pins the zero-copy contract: passing the
// returned buffers back in must not change results.
func TestRawCandidatesBufferReuse(t *testing.T) {
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	r := NewRanker(c.NumUsers(), DefaultParams())
	var raw []RawCandidate
	var cands []Expert
	for i := 0; i < 3; i++ {
		for _, q := range rawTestQueries {
			matched := c.Match(q)
			raw = r.RawCandidatesInto(raw, c, matched)
			cands = r.MergeRawCandidates(cands, []Source{c}, raw)
			want := r.CandidatesFrom(c, matched)
			if len(want) == 0 && len(cands) == 0 {
				continue
			}
			expertsEqual(t, "reused "+q, cands, want)
		}
	}
}
