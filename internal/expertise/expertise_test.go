package expertise

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/microblog"
	"repro/internal/world"
)

func tinySetup(t testing.TB) (*world.World, *microblog.Corpus, *Detector) {
	t.Helper()
	w := world.Build(world.TinyConfig())
	c := microblog.Generate(w, microblog.TinyGenConfig())
	return w, c, New(c, DefaultParams())
}

func TestSearchReturnsExperts(t *testing.T) {
	w, _, d := tinySetup(t)
	results := d.Search("49ers")
	if len(results) == 0 {
		t.Fatal("no experts for 49ers")
	}
	// Ground truth: the top result should be a genuine expert (or at
	// least most of the top-5 should be relevant).
	id49, _ := w.KeywordOwner("49ers")
	relevant := 0
	top := results
	if len(top) > 5 {
		top = top[:5]
	}
	for _, e := range top {
		if w.IsRelevantExpert(e.User, id49) {
			relevant++
		}
	}
	if relevant < len(top)/2+1 {
		t.Errorf("only %d/%d of top results are relevant experts", relevant, len(top))
	}
}

func TestSearchEmptyForUnmatchedQuery(t *testing.T) {
	_, _, d := tinySetup(t)
	if got := d.Search("zzzz unknown keyword"); got != nil {
		t.Fatalf("expected nil for unmatched query, got %d results", len(got))
	}
	if got := d.Search(""); got != nil {
		t.Fatal("expected nil for empty query")
	}
}

func TestResultsSortedAndCapped(t *testing.T) {
	_, _, d := tinySetup(t)
	results := d.Search("49ers")
	for i := 1; i < len(results); i++ {
		if results[i-1].Score < results[i].Score {
			t.Fatal("results not sorted by score")
		}
	}
	if len(results) > d.Params().MaxResults {
		t.Fatalf("got %d results, cap %d", len(results), d.Params().MaxResults)
	}
}

func TestThresholdMonotone(t *testing.T) {
	_, c, _ := tinySetup(t)
	prev := -1
	for _, z := range []float64{-2, 0, 0.5, 1, 2, 4, 8} {
		p := DefaultParams()
		p.MinZScore = z
		p.MaxResults = 0
		d := New(c, p)
		n := len(d.Search("49ers"))
		if prev >= 0 && n > prev {
			t.Fatalf("raising threshold to %v increased results %d -> %d", z, prev, n)
		}
		prev = n
	}
	if prev != 0 {
		t.Errorf("threshold 8 still returns %d results", prev)
	}
}

func TestCandidatesIncludeMentionedUsers(t *testing.T) {
	_, c, d := tinySetup(t)
	// Find a matched tweet with a mention; its mentioned user must be a
	// candidate.
	matched := c.Match("49ers")
	var mentioned world.UserID = -1
	authors := map[world.UserID]bool{}
	for _, tid := range matched {
		tw := c.Tweet(tid)
		authors[tw.Author] = true
	}
	for _, tid := range matched {
		tw := c.Tweet(tid)
		for _, m := range tw.Mentions {
			if !authors[m] {
				mentioned = m
				break
			}
		}
	}
	if mentioned < 0 {
		t.Skip("no purely-mentioned user in tiny corpus")
	}
	cands := d.Candidates("49ers")
	found := false
	for _, e := range cands {
		if e.User == mentioned {
			found = true
			if e.MI <= 0 {
				t.Error("mentioned candidate has zero MI")
			}
		}
	}
	if !found {
		t.Error("mentioned user missing from candidates")
	}
}

func TestFeatureRanges(t *testing.T) {
	_, _, d := tinySetup(t)
	for _, e := range d.Candidates("49ers") {
		if e.TS < 0 || e.TS > 1 {
			t.Errorf("TS out of [0,1]: %v", e.TS)
		}
		if e.MI < 0 || e.MI > 1 {
			t.Errorf("MI out of [0,1]: %v", e.MI)
		}
		if e.RI < 0 || e.RI > 1 {
			t.Errorf("RI out of [0,1]: %v", e.RI)
		}
		if e.OnTopicTweets < 0 {
			t.Errorf("negative tweet count")
		}
	}
}

func TestZScoresProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		zs := zscores(raw)
		var sum float64
		for _, z := range zs {
			sum += z
		}
		mean := sum / float64(len(zs))
		if math.Abs(mean) > 1e-6 {
			return false
		}
		// Order preserved.
		for i := range raw {
			for j := range raw {
				if raw[i] < raw[j] && zs[i] > zs[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZScoresConstantVector(t *testing.T) {
	zs := zscores([]float64{3, 3, 3})
	for _, z := range zs {
		if z != 0 {
			t.Fatalf("constant vector z-scores = %v, want zeros", zs)
		}
	}
}

func TestDeterminism(t *testing.T) {
	_, c, _ := tinySetup(t)
	d1 := New(c, DefaultParams())
	d2 := New(c, DefaultParams())
	a := d1.Search("49ers")
	b := d2.Search("49ers")
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].User != b[i].User || a[i].Score != b[i].Score {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestClusterFilterReducesResults(t *testing.T) {
	_, c, _ := tinySetup(t)
	base := DefaultParams()
	base.MaxResults = 0
	base.MinZScore = -100 // disable threshold; isolate the filter
	plain := New(c, base)
	filtered := base
	filtered.ClusterFilter = true
	clustered := New(c, filtered)

	np := len(plain.Search("49ers"))
	nc := len(clustered.Search("49ers"))
	if np == 0 {
		t.Skip("no candidates")
	}
	if nc > np {
		t.Errorf("cluster filter increased results: %d -> %d", np, nc)
	}
	if nc == 0 {
		t.Error("cluster filter removed everything")
	}
}

func TestClusterFilterKeepsUpperCluster(t *testing.T) {
	scored := []Expert{
		{User: 1, Score: 5.0}, {User: 2, Score: 4.8}, {User: 3, Score: 0.1},
		{User: 4, Score: 0.2}, {User: 5, Score: -0.3},
	}
	out := clusterFilter(scored)
	if len(out) != 2 {
		t.Fatalf("kept %d, want the 2 high scorers", len(out))
	}
	for _, e := range out {
		if e.Score < 4 {
			t.Errorf("low scorer %v survived", e)
		}
	}
}

func TestWeightsAblateFeatures(t *testing.T) {
	_, c, _ := tinySetup(t)
	p := DefaultParams()
	p.WeightMI, p.WeightRI = 0, 0
	p.WeightTS = 1
	p.MinZScore = -100
	p.MaxResults = 0
	d := New(c, p)
	results := d.Search("49ers")
	if len(results) == 0 {
		t.Skip("no results")
	}
	// With TS-only weighting, score order must follow z(log TS) order,
	// which is monotone in TS.
	for i := 1; i < len(results); i++ {
		if results[i-1].Score == results[i].Score {
			continue
		}
		if results[i-1].TS < results[i].TS {
			t.Fatalf("TS-only ranking violated at %d: %v < %v", i, results[i-1].TS, results[i].TS)
		}
	}
}

func TestUnionTweets(t *testing.T) {
	a := []microblog.TweetID{1, 3, 5}
	b := []microblog.TweetID{2, 3, 8}
	got := UnionTweets(a, b)
	want := []microblog.TweetID{1, 2, 3, 5, 8}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	if UnionTweets(nil, nil) != nil {
		t.Error("union of empties should be nil")
	}
}

func TestSpammersRankBelowExperts(t *testing.T) {
	w, c, _ := tinySetup(t)
	p := DefaultParams()
	p.MaxResults = 0
	p.MinZScore = -100
	d := New(c, p)
	results := d.Search("49ers")
	if len(results) < 4 {
		t.Skip("too few results")
	}
	// Mean rank of experts must beat mean rank of spammers among results.
	var expertRankSum, expertN, spamRankSum, spamN float64
	for i, e := range results {
		switch w.User(e.User).Kind {
		case world.ExpertUser, world.NewsUser:
			expertRankSum += float64(i)
			expertN++
		case world.SpamUser:
			spamRankSum += float64(i)
			spamN++
		}
	}
	if expertN == 0 {
		t.Fatal("no experts in results")
	}
	if spamN > 0 && spamRankSum/spamN < expertRankSum/expertN {
		t.Errorf("spammers rank above experts on average")
	}
}

func BenchmarkSearch(b *testing.B) {
	_, _, d := tinySetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Search("49ers")
	}
}

func TestExtendedParamsStillFindExperts(t *testing.T) {
	w, c, _ := tinySetup(t)
	det := New(c, ExtendedParams())
	results := det.Search("49ers")
	if len(results) == 0 {
		t.Fatal("extended feature set found no experts")
	}
	id49, _ := w.KeywordOwner("49ers")
	relevant := 0
	top := results
	if len(top) > 5 {
		top = top[:5]
	}
	for _, e := range top {
		if w.IsRelevantExpert(e.User, id49) {
			relevant++
		}
	}
	if relevant < len(top)/2 {
		t.Errorf("extended features degraded precision: %d/%d relevant", relevant, len(top))
	}
	// Extended raw features populated.
	anyGI := false
	for _, e := range det.Candidates("49ers") {
		if e.GI > 0 {
			anyGI = true
		}
		if e.HT < 0 || e.HT > 1 {
			t.Errorf("HT out of range: %v", e.HT)
		}
		if e.AV < 0 {
			t.Errorf("negative AV: %v", e.AV)
		}
	}
	if !anyGI {
		t.Error("graph influence never populated")
	}
}

func TestDefaultParamsSkipExtendedFeatures(t *testing.T) {
	_, c, d := tinySetup(t)
	for _, e := range d.Candidates("49ers") {
		if e.GI != 0 || e.HT != 0 || e.AV != 0 {
			t.Fatal("extended features computed despite zero weights")
		}
	}
	_ = c
}

func TestLogFeaturesApproximatelyGaussian(t *testing.T) {
	// The paper: "the features appear to be log-normally distributed.
	// Therefore, we take their logarithm to obtain Gaussian
	// distributions." Check our synthetic TS follows suit: the skewness
	// of log TS over a large candidate pool should be far smaller than
	// the skewness of raw TS.
	_, c, d := tinySetup(t)
	cands := d.Candidates("49ers")
	if len(cands) < 10 {
		t.Skip("too few candidates")
	}
	var raw, logged []float64
	for _, e := range cands {
		if e.TS > 0 {
			raw = append(raw, e.TS)
			logged = append(logged, math.Log(e.TS))
		}
	}
	if len(raw) < 8 {
		t.Skip("too few positive TS values")
	}
	if sRaw, sLog := math.Abs(skewness(raw)), math.Abs(skewness(logged)); sLog > sRaw {
		t.Errorf("log transform increased skewness: raw %.2f -> log %.2f", sRaw, sLog)
	}
	_ = c
}

func skewness(xs []float64) float64 {
	n := float64(len(xs))
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
