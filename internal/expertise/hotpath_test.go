package expertise

import (
	"sort"
	"testing"

	"repro/internal/microblog"
	"repro/internal/world"
	"repro/internal/xrand"
)

func randomSortedLists(rng *xrand.RNG, maxLists int) [][]microblog.TweetID {
	nLists := rng.Intn(maxLists + 1)
	lists := make([][]microblog.TweetID, nLists)
	for i := range lists {
		n := rng.Intn(60)
		seen := map[microblog.TweetID]bool{}
		for len(seen) < n {
			seen[microblog.TweetID(rng.Intn(200))] = true
		}
		l := make([]microblog.TweetID, 0, n)
		for id := 0; id < 200; id++ {
			if seen[microblog.TweetID(id)] {
				l = append(l, microblog.TweetID(id))
			}
		}
		lists[i] = l
	}
	return lists
}

// TestMergeTweetsEqualsUnionTweets is the k-way-merge equivalence test:
// on random sorted lists (including empty lists, no lists, and heavy
// overlap) MergeTweets must produce exactly UnionTweets' output.
func TestMergeTweetsEqualsUnionTweets(t *testing.T) {
	rng := xrand.New(1234)
	var buf []microblog.TweetID
	for trial := 0; trial < 400; trial++ {
		lists := randomSortedLists(rng, 12)
		want := UnionTweets(lists...)
		buf = MergeTweets(buf, lists...)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: merge len %d, union len %d (lists=%v)", trial, len(buf), len(want), lists)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("trial %d: merge[%d]=%d union[%d]=%d", trial, i, buf[i], i, want[i])
			}
		}
	}
	if got := MergeTweets(nil); len(got) != 0 {
		t.Fatalf("MergeTweets() = %v, want empty", got)
	}
}

// referenceRank reproduces the pre-top-k selection tail of rank: full
// sort of the thresholded pool, then truncate.
func referenceRank(candidates []Expert, minZ float64, max int) []Expert {
	kept := make([]Expert, 0, len(candidates))
	for _, e := range candidates {
		if e.Score >= minZ {
			kept = append(kept, e)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Score != kept[j].Score {
			return kept[i].Score > kept[j].Score
		}
		return kept[i].User < kept[j].User
	})
	if max > 0 && len(kept) > max {
		kept = kept[:max]
	}
	return kept
}

// TestSelectTopKMatchesFullSort drives the bounded-heap selection
// against sort-then-truncate on random pools, including score ties.
func TestSelectTopKMatchesFullSort(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(80)
		pool := make([]Expert, n)
		for i := range pool {
			pool[i] = Expert{
				User: world.UserID(i),
				// Coarse scores force plenty of ties through the
				// user-id tiebreak.
				Score: float64(rng.Intn(10)) / 3,
			}
		}
		// Shuffle users so ids are not already in heap order.
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			pool[i].User, pool[j].User = pool[j].User, pool[i].User
		}
		k := 1 + rng.Intn(n)
		want := referenceRank(pool, -1e9, k)
		poolCopy := append([]Expert(nil), pool...)
		got := selectTopK(poolCopy, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].User != want[i].User || got[i].Score != want[i].Score {
				t.Fatalf("trial %d rank %d: got {%d %v}, want {%d %v}",
					trial, i, got[i].User, got[i].Score, want[i].User, want[i].Score)
			}
		}
	}
}

// TestRankCappedEqualsFullSortTruncated checks end to end that a
// MaxResults-capped detector returns exactly the head of an uncapped
// detector's ranking, over real corpus queries.
func TestRankCappedEqualsFullSortTruncated(t *testing.T) {
	corpus := microblog.Generate(world.Build(world.TinyConfig()), microblog.TinyGenConfig())
	capped := DefaultParams()
	capped.MaxResults = 5
	uncapped := DefaultParams()
	uncapped.MaxResults = 0
	dc := New(corpus, capped)
	du := New(corpus, uncapped)
	queries := []string{"49ers", "diabetes", "nfl", "coffee", "really", "zzz-none"}
	for _, q := range queries {
		full := du.Search(q)
		want := full
		if len(want) > 5 {
			want = want[:5]
		}
		got := dc.Search(q)
		if len(got) != len(want) {
			t.Fatalf("query %q: capped len %d, full-head len %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %q rank %d: capped %+v, full-head %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestCandidatesScratchReuse hammers CandidatesFromTweets repeatedly
// and interleaved to prove the pooled arena resets cleanly between
// calls and produces identical candidates every time.
func TestCandidatesScratchReuse(t *testing.T) {
	corpus := microblog.Generate(world.Build(world.TinyConfig()), microblog.TinyGenConfig())
	d := New(corpus, DefaultParams())
	queries := []string{"49ers", "diabetes", "coffee", "really"}
	baseline := make(map[string][]Expert, len(queries))
	for _, q := range queries {
		baseline[q] = d.CandidatesFromTweets(corpus.Match(q))
	}
	for round := 0; round < 20; round++ {
		for _, q := range queries {
			got := d.CandidatesFromTweets(corpus.Match(q))
			want := baseline[q]
			if len(got) != len(want) {
				t.Fatalf("round %d query %q: %d candidates, want %d", round, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d query %q cand %d: %+v != %+v", round, q, i, got[i], want[i])
				}
			}
		}
	}
}
