// Command docscheck asserts that every exported symbol in the given
// package directories carries a doc comment, so godoc for the core
// query path never regresses to bare signatures. It is wired into
// `make docs-check` (and CI) over internal/shard and internal/core —
// the packages ARCHITECTURE.md leans on hardest. Test files are
// skipped. Exit status is non-zero if any exported symbol is
// undocumented, with one "file:line: symbol" diagnostic per miss.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <pkg-dir> [pkg-dir...]")
		os.Exit(2)
	}
	misses := 0
	for _, dir := range os.Args[1:] {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				misses += checkFile(fset, f)
			}
		}
	}
	if misses > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d exported symbol(s) without doc comments\n", misses)
		os.Exit(1)
	}
}

// checkFile reports every exported top-level symbol of f lacking a doc
// comment and returns the miss count.
func checkFile(fset *token.FileSet, f *ast.File) int {
	misses := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: undocumented exported %s %s\n", fset.Position(pos), kind, name)
		misses++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// Functions and methods alike: an exported method on an
			// unexported type still surfaces through interfaces.
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers every
					// name in the group (idiomatic for var/const
					// blocks); line comments count too.
					for _, name := range sp.Names {
						if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
	// Interface methods are contract surface — a bare method name in an
	// exported interface is an undocumented obligation on implementors.
	// (Struct fields are deliberately not required: grouped fields with
	// a shared comment are idiomatic throughout this repo.)
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || !ts.Name.IsExported() {
			return true
		}
		if t, ok := ts.Type.(*ast.InterfaceType); ok {
			for _, m := range t.Methods.List {
				for _, name := range m.Names {
					if name.IsExported() && m.Doc == nil && m.Comment == nil {
						report(name.Pos(), "method", ts.Name.Name+"."+name.Name)
					}
				}
			}
		}
		return true
	})
	return misses
}
