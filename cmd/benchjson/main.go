// Command benchjson converts `go test -bench` output on stdin into a
// benchstat-compatible JSON array, one object per benchmark line, so CI
// and BENCHMARKS.md updates can diff runs mechanically:
//
//	make bench-json BENCHN=6   # writes BENCH_6.json
//
// Each object carries the benchmark name (GOMAXPROCS suffix stripped),
// iteration count, ns/op, B/op and allocs/op when present, and any
// custom ReportMetric values under "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parseLine decodes one `BenchmarkFoo-8  123  456 ns/op  ...` line,
// returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Runs: runs, NsPerOp: -1}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			b := int64(val)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(val)
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	if r.NsPerOp < 0 {
		return result{}, false
	}
	return r, true
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
