// Command esharp is the interactive face of the pipeline: it builds the
// offline artifacts from a synthetic world and answers expert queries
// with both e# and the Pal & Counts baseline.
//
// Subcommands:
//
//	esharp build  -shards DIR [-scale tiny|small|default] [-out FILE]
//	    generate the sharded click log, run the offline stage, and
//	    optionally persist the domain collection.
//	esharp query  -q "49ers" [-scale ...] [-expand N] [-z MIN]
//	    run one query through both algorithms and print the results.
//	esharp expand -q "49ers" [-scale ...]
//	    show the expansion terms and the neighboring domains.
//	esharp stats  [-scale ...]
//	    print pipeline statistics (Table 9 style).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = runBuild(args)
	case "query":
		err = runQuery(args)
	case "expand":
		err = runExpand(args)
	case "stats":
		err = runStats(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "esharp %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: esharp <build|query|expand|stats> [flags]")
}

func scaleConfig(scale string) core.PipelineConfig {
	switch scale {
	case "tiny":
		return core.TinyPipelineConfig()
	case "default":
		return core.DefaultPipelineConfig()
	default:
		cfg := core.DefaultPipelineConfig()
		cfg.Log.Events = 600_000
		cfg.MinClicks = 10
		return cfg
	}
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	scale := fs.String("scale", "small", "world scale")
	shards := fs.String("shards", "", "directory for the sharded click log (empty = in-memory)")
	out := fs.String("out", "", "persist the domain collection to this file")
	sql := fs.Bool("sql", false, "cluster on the relational engine")
	fs.Parse(args)

	cfg := scaleConfig(*scale)
	cfg.ShardDir = *shards
	cfg.Offline.UseSQLBackend = *sql
	start := time.Now()
	p, err := core.BuildPipeline(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("built in %v\n", time.Since(start).Round(time.Millisecond))
	for _, s := range p.Stages {
		fmt.Println(" ", s)
	}
	fmt.Printf("log: %d queries; graph: %d vertices / %d edges; domains: %d; tweets: %d\n",
		p.Log.NumQueries(), p.Graph.NumVertices(), p.Graph.NumEdges(),
		p.Collection.NumDomains(), p.Corpus.NumTweets())
	if *out != "" {
		n, err := p.Collection.Save(*out)
		if err != nil {
			return err
		}
		fmt.Printf("collection saved to %s (%d bytes)\n", *out, n)
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	scale := fs.String("scale", "small", "world scale")
	q := fs.String("q", "49ers", "query")
	expand := fs.Int("expand", 10, "max expansion terms")
	minZ := fs.Float64("z", 0, "minimum aggregate z-score")
	topK := fs.Int("k", 10, "results to print per algorithm")
	fs.Parse(args)

	cfg := scaleConfig(*scale)
	cfg.Online.MaxExpansionTerms = *expand
	cfg.Online.Expertise.MinZScore = *minZ
	p, err := core.BuildPipeline(cfg)
	if err != nil {
		return err
	}

	printResults := func(name string, results []expertise.Expert) {
		fmt.Printf("%s (%d experts):\n", name, len(results))
		for i, e := range results {
			if i == *topK {
				break
			}
			u := p.World.User(e.User)
			fmt.Printf("  %2d. @%-24s z=%+.2f  verified=%-5v followers=%-8d %s\n",
				i+1, u.ScreenName, e.Score, u.Verified, u.Followers, u.Description)
		}
	}
	printResults("baseline", p.Detector.SearchBaseline(*q))
	results, trace := p.Detector.Search(*q)
	fmt.Printf("\nexpansion: %s\n", strings.Join(trace.Expansion, ", "))
	fmt.Printf("matched tweets: %d (expand %v, search %v)\n\n",
		trace.MatchedTweets, trace.ExpandDuration.Round(time.Microsecond),
		trace.SearchDuration.Round(time.Microsecond))
	printResults("e#", results)
	return nil
}

func runExpand(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ExitOnError)
	scale := fs.String("scale", "small", "world scale")
	q := fs.String("q", "49ers", "query")
	fs.Parse(args)

	p, err := core.BuildPipeline(scaleConfig(*scale))
	if err != nil {
		return err
	}
	rep, err := eval.RunFigure7(p.Detector, *q, 3)
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderFigure7(rep))
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	scale := fs.String("scale", "small", "world scale")
	fs.Parse(args)

	p, err := core.BuildPipeline(scaleConfig(*scale))
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderTable9(eval.RunTable9(p, []string{"49ers", "diabetes", "nfl"})))
	fmt.Print(eval.RenderFigure5(eval.Figure5(p.Clustering)))
	labels, counts := eval.Figure6(p.Clustering)
	fmt.Print(eval.RenderFigure6(labels, counts))
	return nil
}
