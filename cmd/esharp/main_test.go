package main

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/domains"
)

func TestScaleConfig(t *testing.T) {
	for _, scale := range []string{"tiny", "small", "default"} {
		cfg := scaleConfig(scale)
		if cfg.Log.Events <= 0 || cfg.MinClicks <= 0 {
			t.Errorf("scale %q produced unusable config", scale)
		}
	}
}

// TestBuildQuerySaveLoad exercises the same path as `esharp build -out`:
// build a pipeline, persist the collection, reload it and serve a query
// from the reloaded store.
func TestBuildQuerySaveLoad(t *testing.T) {
	cfg := core.TinyPipelineConfig()
	cfg.Log.Events = 20_000
	p, err := core.BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "domains.bin")
	if _, err := p.Collection.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := domains.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(loaded, p.Corpus, cfg.Online)
	results, trace := det.Search("49ers")
	if len(results) == 0 {
		t.Fatal("no results from reloaded collection")
	}
	if len(trace.Expansion) == 0 {
		t.Fatal("no expansion from reloaded collection")
	}
}
