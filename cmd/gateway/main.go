// Gateway is the front-door process of the reproduction: an HTTP/JSON
// service (internal/gateway) over the serving layer (internal/serve)
// over an e# detector — in-process sharded by default, or a
// coordinator over remote shardd processes with -remote.
//
// A single-process front door over four in-process shards:
//
//	gateway -addr :8080 -shards 4 -tokens "dev::::admin,reader:50:100:10000"
//
// The same front door as the coordinator of a 2-shardd deployment,
// with the admin plane on :8081:
//
//	shardd -addr :7101 -shard 0 -of 2 &
//	shardd -addr :7102 -shard 1 -of 2 &
//	gateway -addr :8080 -admin :8081 -remote localhost:7101,localhost:7102
//
// Clients authenticate with a bearer token and may name a latency
// budget; the budget rides the request context down the scatter-gather
// into per-shard RPC deadlines:
//
//	curl -s -X POST -H "Authorization: Bearer dev" -H "X-Budget-Ms: 250" \
//	     -d '{"query":"vintage cars"}' localhost:8080/v1/search
//
// SIGINT/SIGTERM shut the process down gracefully: stop accepting,
// release streaming watchers, drain in-flight requests within -grace,
// exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/transport"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigs, nil); err != nil {
		log.Fatal(err)
	}
}

// run builds the detector, serving layer and gateway, serves HTTP
// until a signal arrives on sigs, then drains and returns nil. When
// ready is non-nil it receives the bound address once listening (tests
// use it to drive the process loop).
func run(args []string, out io.Writer, sigs <-chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("gateway", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8080", "TCP address to serve HTTP on")
	admin := fs.String("admin", "", "optional host:port for the shared admin HTTP plane (/metrics, /healthz, /stats, /debug/pprof/)")
	tokens := fs.String("tokens", "dev::::admin", "client tokens, comma-separated token:rate:burst:daily[:admin] (empty numeric fields mean unlimited)")
	shards := fs.Int("shards", 2, "in-process shard count (ignored with -remote)")
	remote := fs.String("remote", "", "comma-separated shardd addresses ('|' groups replicas of one shard); empty serves in-process")
	seal := fs.Int("seal", 128, "active-segment seal threshold (in-process shards)")
	fanIn := fs.Int("fanin", 4, "compaction fan-in (in-process shards)")
	cache := fs.Int("cache", 4096, "serving-layer result cache size (0 disables)")
	budgetMS := fs.Int("budget-ms", 2000, "default per-request latency budget")
	maxBudgetMS := fs.Int("max-budget-ms", 10000, "ceiling on client-named budgets")
	maxInflight := fs.Int("max-inflight", 0, "cold misses computing at once before load-shedding (0 = unlimited)")
	grace := fs.Duration("grace", 5*time.Second, "in-flight drain budget on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tokenTable, err := gateway.ParseTokens(*tokens)
	if err != nil {
		return err
	}

	// The deterministic pipeline every process of a deployment builds;
	// with -remote, the per-connection handshake proves each shardd
	// serves the partition this coordinator expects over the same base.
	pipeline, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		return err
	}
	online := pipeline.Cfg.Online
	// Request-level parallelism saturates the cores; see package serve.
	online.MatchWorkers = 1
	reg := obs.NewRegistry()

	var backend serve.Backend
	if *remote != "" {
		groups := strings.Split(*remote, ",")
		n := len(groups)
		partSize := make([]int, n)
		for _, tw := range pipeline.Corpus.Tweets() {
			partSize[shard.ShardOf(tw.Author, n)]++
		}
		backends := make([]shard.Backend, n)
		for i, group := range groups {
			ccfg := transport.DefaultClientConfig()
			ccfg.Obs = reg
			reps, err := transport.DialReplicas(strings.Split(group, "|"), i, n,
				len(pipeline.World.Users), partSize[i], ccfg)
			if err != nil {
				return err
			}
			if len(reps) == 1 {
				backends[i] = reps[0]
			} else {
				rcfg := replica.DefaultConfig()
				rcfg.Obs = reg
				set, err := replica.NewSet(reps, rcfg)
				if err != nil {
					return err
				}
				backends[i] = set
			}
		}
		cluster := shard.NewCluster(pipeline.World, backends...)
		defer cluster.Close()
		backend = core.NewShardedLiveDetectorOver(pipeline.Collection, cluster, online)
	} else {
		if *shards < 1 {
			return fmt.Errorf("gateway: -shards %d is not a valid shard count", *shards)
		}
		icfg := ingest.Config{SealThreshold: *seal, CompactFanIn: *fanIn}
		r := shard.New(pipeline.Corpus, shard.Config{Shards: *shards, Ingest: icfg})
		defer r.Close()
		backend = core.NewShardedLiveDetector(pipeline.Collection, r, online)
	}

	scfg := serve.DefaultConfig()
	scfg.CacheSize = *cache
	scfg.MaxInflightMisses = *maxInflight
	scfg.Obs = reg
	srv := serve.New(backend, scfg)

	gw, err := gateway.New(gateway.Config{
		Serve:         srv,
		Tokens:        tokenTable,
		DefaultBudget: time.Duration(*budgetMS) * time.Millisecond,
		MaxBudget:     time.Duration(*maxBudgetMS) * time.Millisecond,
		Obs:           reg,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	if *admin != "" {
		adm, err := obs.StartAdmin(*admin, obs.AdminConfig{
			Registry: reg,
			SlowLog:  srv.SlowLog(),
			Stats: func() any {
				return map[string]any{"serve": srv.Stats(), "gateway": gw.Stats()}
			},
		})
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "gateway: admin plane on http://%s (/metrics /healthz /stats /debug/pprof/)\n", adm.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: gw}
	fmt.Fprintf(out, "gateway: serving on http://%s (POST /v1/search) — %d tokens, default budget %dms\n",
		ln.Addr(), len(tokenTable), *budgetMS)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case sig := <-sigs:
		fmt.Fprintf(out, "gateway: %v — draining (grace %v)\n", sig, *grace)
		// Release streaming watchers first: Shutdown waits for active
		// handlers, and a watch stream would otherwise hold the drain
		// until its client hung up.
		gw.Close()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		fmt.Fprintln(out, "gateway: drained, bye")
		return nil
	}
}
