package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bootGateway starts run() on a free port and returns the bound
// address plus the done channel carrying run's return value.
func bootGateway(t *testing.T, extra ...string) (string, chan os.Signal, chan error, *strings.Builder) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-shards", "2", "-seal", "64"}, extra...)
	ready := make(chan string, 1)
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() { done <- run(args, &out, sigs, ready) }()
	select {
	case addr := <-ready:
		return addr, sigs, done, &out
	case err := <-done:
		t.Fatalf("run exited before ready: %v\n%s", err, out.String())
		return "", nil, nil, nil
	}
}

// TestRunServesAndDrains boots the gateway process loop, drives an
// authenticated search and the auth refusals over real HTTP, then
// delivers SIGTERM and requires a clean drain: run returns nil (exit
// 0) and narrates the shutdown.
func TestRunServesAndDrains(t *testing.T) {
	addr, sigs, done, out := bootGateway(t)
	url := "http://" + addr + "/v1/search"

	req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(`{"query":"vintage cars"}`))
	req.Header.Set("Authorization", "Bearer dev")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed search: status %d: %s", resp.StatusCode, body)
	}
	var decoded struct {
		Experts json.RawMessage `json:"experts"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil || string(decoded.Experts) == "null" {
		t.Fatalf("malformed search body %s (err %v)", body, err)
	}

	resp, err = http.Post(url, "application/json", strings.NewReader(`{"query":"vintage cars"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated search: status %d, want 401", resp.StatusCode)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	if got := out.String(); !strings.Contains(got, "drained, bye") {
		t.Fatalf("drain not narrated: %q", got)
	}
}

// TestRunAdminPlane boots with -admin and scrapes the shared plane:
// both serve_* and gateway_* metric families must be visible.
func TestRunAdminPlane(t *testing.T) {
	addr, sigs, done, out := bootGateway(t, "-admin", "127.0.0.1:0")
	defer func() {
		sigs <- syscall.SIGTERM
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}()

	req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/search",
		strings.NewReader(`{"query":"vintage cars"}`))
	req.Header.Set("Authorization", "Bearer dev")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	banner := out.String()
	i := strings.Index(banner, "admin plane on http://")
	if i < 0 {
		t.Fatalf("admin banner missing: %q", banner)
	}
	base := strings.Fields(banner[i+len("admin plane on "):])[0]
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, row := range []string{"gateway_requests 1", "gateway_ok 1", "serve_queries 1"} {
		if !strings.Contains(string(metrics), row) {
			t.Errorf("/metrics missing %q:\n%s", row, metrics)
		}
	}
}

// TestRunRejectsBadFlags pins the flag validation paths.
func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-shards", "0"}, &out, nil, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	if err := run([]string{"-tokens", "a:b::"}, &out, nil, nil); err == nil {
		t.Fatal("malformed token spec accepted")
	}
	if err := run([]string{"-tokens", ""}, &out, nil, nil); err == nil {
		t.Fatal("empty token table accepted")
	}
}
