// Shardd serves one shard of the author-partitioned expert index over
// the wire protocol of internal/transport — the per-process half of
// cross-process sharding. Each shardd builds the deterministic pipeline
// (so every process, and the coordinator, agrees on the world and the
// base corpus bit for bit), keeps exactly its partition —
// shard.Partition(base, i, n), the same slice the in-process Router
// would hand shard i — and serves searches, denominator fetches,
// routed ingest and epoch/quiesce probes on one TCP address.
//
// A 4-shard deployment is four processes plus a coordinator:
//
//	shardd -addr :7101 -shard 0 -of 4 &
//	shardd -addr :7102 -shard 1 -of 4 &
//	shardd -addr :7103 -shard 2 -of 4 &
//	shardd -addr :7104 -shard 3 -of 4 &
//	go run ./examples/streaming -remote localhost:7101,localhost:7102,localhost:7103,localhost:7104
//
// Replication (internal/replica) needs no shardd-side support at all:
// a replica is just another shardd started with the *same* -shard/-of
// coordinates, and the coordinator groups replicas with '|' inside a
// shard's slot — the first address of each group is the primary:
//
//	shardd -addr :7101 -shard 0 -of 2 &
//	shardd -addr :7111 -shard 0 -of 2 &   # replica of shard 0
//	shardd -addr :7102 -shard 1 -of 2 &
//	shardd -addr :7112 -shard 1 -of 2 &   # replica of shard 1
//	go run ./examples/streaming -remote "localhost:7101|localhost:7111,localhost:7102|localhost:7112"
//
// The streaming example's final check then holds the whole deployment
// to the usual bar: quiesced ranking over the wire must be
// bit-identical to a cold single-process rebuild.
//
// Resharding an N-shardd deployment to M processes reuses the same
// wire surface: a shard.Migration pages each old shard's post log over
// OpTweets (the server filters by destination ownership, so only the
// moving authors' posts cross the wire), catch-up rounds absorb writes
// that land mid-drain, and the coordinator swaps its routing table
// once source and destination epochs agree. Every client restates its
// handshake-pinned -shard/-of coordinates on the per-connection OpInfo
// exchange, and a shardd whose topology no longer matches refuses the
// connection outright — after a reshard, a coordinator still wired for
// the old N fails at connect instead of silently reading the wrong
// partition.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/transport"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigs, nil); err != nil {
		log.Fatal(err)
	}
}

// run parses flags, builds the shard's slice of the deterministic
// pipeline and serves it until the server is closed or a signal
// arrives on sigs — SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, let in-flight conversations and push subscribers drain
// within the -grace budget, then exit 0. When started is non-nil it
// receives the listening server once ready (tests use it to drive and
// then stop the process loop).
func run(args []string, out io.Writer, sigs <-chan os.Signal, started chan<- *transport.ShardServer) error {
	fs := flag.NewFlagSet("shardd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:7101", "TCP address to serve the shard on")
	shardIdx := fs.Int("shard", 0, "index of the partition this process owns")
	numShards := fs.Int("of", 1, "total number of partitions in the deployment")
	seal := fs.Int("seal", 128, "active-segment seal threshold")
	fanIn := fs.Int("fanin", 4, "compaction fan-in")
	dataDir := fs.String("data-dir", "", "directory for the disk tier: sealed segments past -spill posts are rewritten to compressed mmap-backed files under <data-dir>/shard-<i>; empty keeps every segment in heap")
	spill := fs.Int("spill", 0, "minimum segment size (posts) the disk tier accepts; 0 means 4x -seal (only meaningful with -data-dir)")
	admin := fs.String("admin", "", "optional host:port for the admin HTTP plane (/metrics, /healthz, /stats, /debug/pprof/)")
	grace := fs.Duration("grace", 5*time.Second, "in-flight drain budget on SIGINT/SIGTERM before connections are force-closed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *numShards < 1 || *shardIdx < 0 || *shardIdx >= *numShards {
		return fmt.Errorf("shardd: -shard %d -of %d is not a valid partition", *shardIdx, *numShards)
	}

	// The same deterministic build every shardd and the coordinator run;
	// agreement is verified per-connection by the transport handshake.
	pipeline, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		return err
	}
	part := shard.Partition(pipeline.Corpus, *shardIdx, *numShards)
	// One registry spans the process: the index's ingest accounting and
	// the server's wire accounting land in the same /metrics namespace.
	var reg *obs.Registry
	if *admin != "" {
		reg = obs.NewRegistry()
	}
	icfg := ingest.Config{SealThreshold: *seal, CompactFanIn: *fanIn, Obs: reg}
	if *dataDir != "" {
		// Each shard owns its own subdirectory: the index removes stale
		// segment files at startup, and replicas of the same shard on one
		// machine must still point at distinct -data-dirs.
		icfg.SpillDir = filepath.Join(*dataDir, fmt.Sprintf("shard-%d", *shardIdx))
		icfg.SpillThreshold = *spill
	}
	idx := ingest.New(part, icfg)
	defer idx.Close()

	scfg := transport.DefaultServerConfig(*shardIdx, *numShards)
	scfg.Obs = reg
	srv, err := transport.Listen(*addr, idx, scfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *admin != "" {
		adm, err := obs.StartAdmin(*admin, obs.AdminConfig{
			Registry: reg,
			Stats:    func() any { return idx.Stats() },
		})
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "shardd: admin plane on http://%s (/metrics /healthz /stats /debug/pprof/)\n", adm.Addr())
	}
	fmt.Fprintf(out, "shardd: shard %d/%d on %s — %d base tweets (%d total in world), seal %d, fan-in %d\n",
		*shardIdx, *numShards, srv.Addr(), part.NumTweets(), pipeline.Corpus.NumTweets(), *seal, *fanIn)
	if started != nil {
		started <- srv
	}
	if sigs != nil {
		done := make(chan struct{})
		go func() {
			srv.Wait()
			close(done)
		}()
		select {
		case sig := <-sigs:
			fmt.Fprintf(out, "shardd: %v — draining (grace %v)\n", sig, *grace)
			if err := srv.Shutdown(*grace); err != nil {
				return err
			}
			fmt.Fprintln(out, "shardd: drained, bye")
			return nil
		case <-done:
			return nil
		}
	}
	srv.Wait()
	return nil
}
