package main

import (
	"strings"
	"testing"

	"repro/internal/transport"
)

// TestRunServesAndStops boots a shardd on a free port, drives the wire
// protocol against it like a coordinator would, and shuts it down.
func TestRunServesAndStops(t *testing.T) {
	started := make(chan *transport.ShardServer, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shard", "0", "-of", "2", "-seal", "64"}, &out, started)
	}()
	srv := <-started

	c := transport.NewRemoteShard(srv.Addr().String(), transport.DefaultClientConfig())
	defer c.Close()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != 0 || info.NumShards != 2 {
		t.Fatalf("shardd serves %d/%d, want 0/2", info.Shard, info.NumShards)
	}
	if info.BaseTweets <= 0 || info.BaseTweets >= info.NumTweets+1 {
		t.Fatalf("implausible partition: %+v", info)
	}
	rows, matched, v, err := c.Search([]string{"49ers"}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	if matched < 0 || len(rows) > matched*2 {
		t.Fatalf("implausible search result: %d rows, %d matched", len(rows), matched)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
	if !strings.Contains(out.String(), "shard 0/2") {
		t.Fatalf("banner missing: %q", out.String())
	}
}

// TestRunRejectsBadPartition pins the flag validation.
func TestRunRejectsBadPartition(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-shard", "3", "-of", "2"}, &out, nil); err == nil {
		t.Fatal("invalid partition accepted")
	}
	if err := run([]string{"-of", "0"}, &out, nil); err == nil {
		t.Fatal("zero partitions accepted")
	}
}
