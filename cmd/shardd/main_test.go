package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/microblog"
	"repro/internal/transport"
)

// TestRunServesAndStops boots a shardd on a free port, drives the wire
// protocol against it like a coordinator would, and shuts it down.
func TestRunServesAndStops(t *testing.T) {
	started := make(chan *transport.ShardServer, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shard", "0", "-of", "2", "-seal", "64"}, &out, nil, started)
	}()
	srv := <-started

	c := transport.NewRemoteShard(srv.Addr().String(), transport.DefaultClientConfig())
	defer c.Close()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != 0 || info.NumShards != 2 {
		t.Fatalf("shardd serves %d/%d, want 0/2", info.Shard, info.NumShards)
	}
	if info.BaseTweets <= 0 || info.BaseTweets >= info.NumTweets+1 {
		t.Fatalf("implausible partition: %+v", info)
	}
	rows, matched, v, err := c.Search(context.Background(), []string{"49ers"}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	if matched < 0 || len(rows) > matched*2 {
		t.Fatalf("implausible search result: %d rows, %d matched", len(rows), matched)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
	if !strings.Contains(out.String(), "shard 0/2") {
		t.Fatalf("banner missing: %q", out.String())
	}
}

// TestRunAdminPlane boots a shardd with -admin, drives wire traffic,
// and scrapes the admin endpoints: the ingest and RPC accounting of the
// live process must be visible over plain HTTP.
func TestRunAdminPlane(t *testing.T) {
	started := make(chan *transport.ShardServer, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
			"-shard", "0", "-of", "1", "-seal", "8"}, &out, nil, started)
	}()
	srv := <-started
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}()

	// Both banners are written before started is signalled, so the
	// admin address is parseable from out here.
	m := regexp.MustCompile(`admin plane on (http://\S+)`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("admin banner missing: %q", out.String())
	}
	base := m[1]

	// Drive one search so the RPC accounting moves.
	c := transport.NewRemoteShard(srv.Addr().String(), transport.DefaultClientConfig())
	defer c.Close()
	if _, _, v, err := c.Search(context.Background(), []string{"49ers"}, false, nil); err != nil {
		t.Fatal(err)
	} else {
		v.Release()
	}

	body := fetchOK(t, base+"/healthz")
	if !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
	metrics := fetchOK(t, base+"/metrics")
	for _, row := range []string{
		"rpc_server_search_requests 1",
		"rpc_server_search_ns_count 1",
		"rpc_server_bytes_read ",
		"ingest_posts 0",
	} {
		if !strings.Contains(metrics, row) {
			t.Errorf("/metrics missing %q:\n%s", row, metrics)
		}
	}
	stats := fetchOK(t, base+"/stats")
	for _, key := range []string{`"stats"`, `"metrics"`, `"Segments"`} {
		if !strings.Contains(stats, key) {
			t.Errorf("/stats missing %s:\n%s", key, stats)
		}
	}
	if pprof := fetchOK(t, base+"/debug/pprof/"); !strings.Contains(pprof, "goroutine") {
		t.Errorf("/debug/pprof/ = %q", pprof)
	}
}

// fetchOK GETs url and returns the body, failing on any error or
// non-200 status.
func fetchOK(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestRunDataDir boots a shardd with the disk tier enabled, streams
// enough posts over the wire to force spills, and checks that sealed
// segments landed as files under <data-dir>/shard-0 while searches
// keep answering.
func TestRunDataDir(t *testing.T) {
	dir := t.TempDir()
	started := make(chan *transport.ShardServer, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shard", "0", "-of", "1",
			"-seal", "16", "-spill", "16", "-data-dir", dir}, &out, nil, started)
	}()
	srv := <-started
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}()

	c := transport.NewRemoteShard(srv.Addr().String(), transport.DefaultClientConfig())
	defer c.Close()
	p, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(7))
	posts := make([]microblog.Post, 64)
	for i := range posts {
		posts[i] = stream.Next()
	}
	if err := c.IngestBatch(posts); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "shard-0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("quiesced shardd spilled no segment files under -data-dir")
	}
	rows, matched, v, err := c.Search(context.Background(), []string{"49ers"}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	if matched < 0 || len(rows) > matched*2 {
		t.Fatalf("implausible search result over spilled shard: %d rows, %d matched", len(rows), matched)
	}
}

// TestRunRejectsBadPartition pins the flag validation.
func TestRunRejectsBadPartition(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-shard", "3", "-of", "2"}, &out, nil, nil); err == nil {
		t.Fatal("invalid partition accepted")
	}
	if err := run([]string{"-of", "0"}, &out, nil, nil); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

// TestRunDrainsOnSignal pins the graceful-shutdown bugfix: a SIGTERM
// delivered mid-conversation drains the server within the grace budget
// and run returns nil (exit 0), with the drain narrated on stdout.
func TestRunDrainsOnSignal(t *testing.T) {
	started := make(chan *transport.ShardServer, 1)
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shard", "0", "-of", "1",
			"-grace", "5s"}, &out, sigs, started)
	}()
	srv := <-started

	// A live client conversation in progress when the signal lands.
	c := transport.NewRemoteShard(srv.Addr().String(), transport.DefaultClientConfig())
	defer c.Close()
	if _, _, v, err := c.Search(context.Background(), []string{"49ers"}, false, nil); err != nil {
		t.Fatal(err)
	} else {
		v.Release()
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	got := out.String()
	if !strings.Contains(got, "draining") || !strings.Contains(got, "drained, bye") {
		t.Fatalf("drain not narrated: %q", got)
	}
}
