// Command experiments regenerates every table and figure of the paper's
// evaluation section (Tables 1–9, Figures 5–10) on the synthetic world,
// printing paper-style text renderings. It is the program behind
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-scale tiny|small|default] [-run all|table1|tables2to7|
//	             table8|table9|fig5|fig6|fig7|fig8|fig9|fig10|oracle]
//	             [-seed N] [-sql]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/eval"
)

func main() {
	scale := flag.String("scale", "small", "world scale: tiny, small or default")
	run := flag.String("run", "all", "experiment to run (all, table1, tables2to7, table8, table9, fig5..fig10, oracle)")
	seed := flag.Uint64("seed", 1, "world seed")
	useSQL := flag.Bool("sql", false, "run clustering on the relational engine")
	flag.Parse()

	cfg, setSizes := configFor(*scale)
	cfg.World.Seed = *seed
	cfg.Offline.UseSQLBackend = *useSQL

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building pipeline (scale=%s, sql=%v)...\n", *scale, *useSQL)
	p, err := core.BuildPipeline(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pipeline ready in %v: %d queries, %d graph edges, %d domains, %d tweets\n",
		time.Since(start).Round(time.Millisecond),
		p.Log.NumQueries(), p.Graph.NumEdges(), p.Collection.NumDomains(), p.Corpus.NumTweets())

	sets := eval.BuildQuerySets(p.World, p.Log, setSizes)

	want := func(name string) bool { return *run == "all" || *run == name }
	section := func(s string) {
		fmt.Println()
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(s)
		fmt.Println(strings.Repeat("=", 72))
	}

	if want("table1") {
		section("TABLE 1")
		fmt.Print(eval.RenderTable1(sets))
	}
	if want("fig5") {
		section("FIGURE 5")
		fmt.Print(eval.RenderFigure5(eval.Figure5(p.Clustering)))
	}
	if want("fig6") {
		section("FIGURE 6")
		labels, counts := eval.Figure6(p.Clustering)
		fmt.Print(eval.RenderFigure6(labels, counts))
	}
	if want("fig7") {
		section("FIGURE 7")
		rep, err := eval.RunFigure7(p.Detector, "49ers", 3)
		if err != nil {
			fmt.Println("figure 7 unavailable:", err)
		} else {
			fmt.Print(eval.RenderFigure7(rep))
		}
	}
	if want("tables2to7") {
		section("TABLES 2-7")
		for _, q := range []string{"49ers", "bluetooth speakers", "dow futures", "diabetes", "world war i", "sarah palin"} {
			fmt.Print(eval.RenderExampleTable(q, eval.RunExampleTable(p.Detector, p.World, q, 3)))
			fmt.Println()
		}
	}
	if want("table8") {
		section("TABLE 8")
		fmt.Print(eval.RenderTable8(eval.RunTable8(p.Detector, sets)))
	}
	if want("fig8") {
		section("FIGURE 8")
		fmt.Print(eval.RenderFigure8(eval.RunFigure8(p.Detector, sets, 14)))
	}
	if want("fig9") {
		section("FIGURE 9")
		top := sets[len(sets)-1]
		fmt.Print(eval.RenderFigure9(eval.RunFigure9(p, top,
			[]float64{0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0})))
	}
	if want("fig10") {
		section("FIGURE 10")
		study := crowd.NewStudy(p.World, crowd.DefaultConfig())
		fmt.Print(eval.RenderFigure10(eval.RunFigure10(p, study, sets,
			[]float64{0, 0.5, 1.0, 1.5, 2.0}, 50)))
	}
	if want("table9") {
		section("TABLE 9")
		samples := []string{"49ers", "diabetes", "dow futures", "nfl", "xbox"}
		fmt.Print(eval.RenderTable9(eval.RunTable9(p, samples)))
	}
	if want("oracle") {
		section("ORACLE RECALL/PRECISION (beyond the paper)")
		fmt.Print(eval.RenderGroundTruth(eval.RunGroundTruth(p.Detector, p.World, sets)))
	}

	fmt.Fprintf(os.Stderr, "\ntotal runtime %v\n", time.Since(start).Round(time.Millisecond))
}

// configFor maps a scale name to pipeline configuration and Table 1
// set sizes.
func configFor(scale string) (core.PipelineConfig, eval.SetSizes) {
	switch scale {
	case "tiny":
		cfg := core.TinyPipelineConfig()
		return cfg, eval.SetSizes{PerCategory: 25, Top: 60}
	case "default":
		return core.DefaultPipelineConfig(), eval.DefaultSetSizes()
	default: // "small": default world, lighter log for fast runs
		cfg := core.DefaultPipelineConfig()
		cfg.Log.Events = 600_000
		cfg.MinClicks = 10
		return cfg, eval.SetSizes{PerCategory: 100, Top: 250}
	}
}
