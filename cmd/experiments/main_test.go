package main

import "testing"

func TestConfigForScales(t *testing.T) {
	for _, scale := range []string{"tiny", "small", "default"} {
		cfg, sizes := configFor(scale)
		if cfg.Log.Events <= 0 {
			t.Errorf("scale %q: no events", scale)
		}
		if sizes.Top <= 0 || sizes.PerCategory <= 0 {
			t.Errorf("scale %q: bad set sizes", scale)
		}
	}
	tiny, _ := configFor("tiny")
	def, _ := configFor("default")
	if tiny.Log.Events >= def.Log.Events {
		t.Error("tiny scale not smaller than default")
	}
}

func TestConfigForUnknownFallsBack(t *testing.T) {
	cfg, _ := configFor("bogus")
	small, _ := configFor("small")
	if cfg.Log.Events != small.Log.Events {
		t.Error("unknown scale should behave like small")
	}
}
