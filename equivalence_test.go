// Equivalence tests for the zero-copy concurrent online path: for every
// query in the paper's evaluation query sets, the optimized pipeline
// (galloping intersection, pooled candidate arena, k-way merge union,
// parallel term fan-out, bounded top-k ranking) must return results
// bit-identical to an independent from-scratch reference implementation
// of the Section 3/5 algorithms.
package repro

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/textutil"
	"repro/internal/world"
)

var (
	eqOnce sync.Once
	eqPipe *core.Pipeline
	eqSets []eval.QuerySet
	eqErr  error
)

func eqState(t *testing.T) (*core.Pipeline, []eval.QuerySet) {
	t.Helper()
	eqOnce.Do(func() {
		eqPipe, eqErr = core.BuildPipeline(core.TinyPipelineConfig())
		if eqErr == nil {
			eqSets = eval.BuildQuerySets(eqPipe.World, eqPipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if eqErr != nil {
		t.Fatal(eqErr)
	}
	return eqPipe, eqSets
}

// refMatch is the brute-force matcher: scan every tweet with the
// paper's AND predicate.
func refMatch(c *microblog.Corpus, query string) []microblog.TweetID {
	tokens := textutil.Tokenize(query)
	if len(tokens) == 0 {
		return nil
	}
	var out []microblog.TweetID
	for i := 0; i < c.NumTweets(); i++ {
		if textutil.ContainsAll(c.Tweet(microblog.TweetID(i)).Terms, tokens) {
			out = append(out, microblog.TweetID(i))
		}
	}
	return out
}

// refRank reimplements the Section 3 ranking from scratch (map-based
// counters, per-candidate log transform, z-score normalization,
// weighted sum, threshold, full sort, truncate) for the production
// feature set, mirroring the float operation order of the optimized
// path so results compare exactly.
func refRank(c *microblog.Corpus, p expertise.Params, matched []microblog.TweetID) []expertise.Expert {
	if len(matched) == 0 {
		return nil
	}
	type counters struct{ tweets, mentions, retweets int }
	byUser := map[world.UserID]*counters{}
	get := func(u world.UserID) *counters {
		ct := byUser[u]
		if ct == nil {
			ct = &counters{}
			byUser[u] = ct
		}
		return ct
	}
	for _, tid := range matched {
		tw := c.Tweet(tid)
		a := get(tw.Author)
		a.tweets++
		a.retweets += tw.RetweetCount
		for _, m := range tw.Mentions {
			get(m).mentions++
		}
	}
	users := make([]world.UserID, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	n := len(users)
	cands := make([]expertise.Expert, n)
	logTS := make([]float64, n)
	logMI := make([]float64, n)
	logRI := make([]float64, n)
	for i, u := range users {
		ct := byUser[u]
		e := expertise.Expert{User: u, OnTopicTweets: ct.tweets}
		if total := c.NumTweetsBy(u); total > 0 {
			e.TS = float64(ct.tweets) / float64(total)
		}
		if total := c.NumMentionsOf(u); total > 0 {
			e.MI = float64(ct.mentions) / float64(total)
		}
		if total := c.NumRetweetsOf(u); total > 0 {
			e.RI = float64(ct.retweets) / float64(total)
		}
		cands[i] = e
		logTS[i] = math.Log(e.TS + p.Epsilon)
		logMI[i] = math.Log(e.MI + p.Epsilon)
		logRI[i] = math.Log(e.RI + p.Epsilon)
	}
	zTS := refZScores(logTS)
	zMI := refZScores(logMI)
	zRI := refZScores(logRI)
	wSum := p.WeightTS + p.WeightMI + p.WeightRI + p.WeightHT + p.WeightGI + p.WeightAV
	for i := range cands {
		cands[i].Score = (p.WeightTS*zTS[i] + p.WeightMI*zMI[i] + p.WeightRI*zRI[i]) / wSum
	}
	kept := cands[:0]
	for _, e := range cands {
		if e.Score >= p.MinZScore {
			kept = append(kept, e)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Score != kept[j].Score {
			return kept[i].Score > kept[j].Score
		}
		return kept[i].User < kept[j].User
	})
	if p.MaxResults > 0 && len(kept) > p.MaxResults {
		kept = kept[:p.MaxResults]
	}
	if len(kept) == 0 {
		return nil
	}
	return kept
}

func refZScores(xs []float64) []float64 {
	n := float64(len(xs))
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	std := math.Sqrt(sq / n)
	out := make([]float64, len(xs))
	if std == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mean) / std
	}
	return out
}

func expertsEqual(t *testing.T, label, query string, got, want []expertise.Expert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d results, reference has %d", label, query, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %q rank %d:\n  got  %+v\n  want %+v", label, query, i, got[i], want[i])
		}
	}
}

// TestSearchMatchesReferenceOnEvalQuerySets is the acceptance test of
// the perf PR: ranked e# and baseline results must be unchanged for
// every query in every evaluation query set.
func TestSearchMatchesReferenceOnEvalQuerySets(t *testing.T) {
	pipe, sets := eqState(t)
	det := pipe.Detector
	params := det.Base().Params()
	total := 0
	for _, set := range sets {
		for _, q := range set.Queries {
			total++
			// e# path: expansion, per-term match, union, one ranking pass.
			terms := append([]string{q}, det.Expand(q)...)
			lists := make([][]microblog.TweetID, len(terms))
			for i, term := range terms {
				lists[i] = refMatch(pipe.Corpus, term)
			}
			wantES := refRank(pipe.Corpus, params, expertise.UnionTweets(lists...))
			gotES, trace := det.Search(q)
			expertsEqual(t, "esharp", q, gotES, wantES)
			if wantUnion := expertise.UnionTweets(lists...); trace.MatchedTweets != len(wantUnion) {
				t.Fatalf("esharp %q: trace reports %d matched tweets, reference %d",
					q, trace.MatchedTweets, len(wantUnion))
			}

			// Baseline path: single-term match, same ranking.
			wantBase := refRank(pipe.Corpus, params, refMatch(pipe.Corpus, q))
			expertsEqual(t, "baseline", q, det.SearchBaseline(q), wantBase)
		}
	}
	if total == 0 {
		t.Fatal("no queries in eval sets")
	}
}
