// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations of the design decisions and the
// BenchmarkServeQPS* serving-throughput suite. Naming follows the
// paper: BenchmarkTable8AnsweredRate re-runs the Table 8 experiment
// once per iteration, and so on. Reported custom metrics carry the
// headline numbers (improvement, modularity, qps, ...) so
// `go test -bench . -benchmem` doubles as a results summary.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/domains"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/querylog"
	"repro/internal/relops"
	"repro/internal/serve"
	"repro/internal/simgraph"
	"repro/internal/world"
)

// benchState is built once and shared read-only by every benchmark.
type benchState struct {
	pipe *core.Pipeline
	sets []eval.QuerySet
	err  error
}

var (
	benchOnce sync.Once
	bench     benchState
)

func state(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.TinyPipelineConfig()
		bench.pipe, bench.err = core.BuildPipeline(cfg)
		if bench.err == nil {
			bench.sets = eval.BuildQuerySets(bench.pipe.World, bench.pipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if bench.err != nil {
		b.Fatal(bench.err)
	}
	return &bench
}

// --- Tables ---

func BenchmarkTable1QuerySets(b *testing.B) {
	s := state(b)
	for i := 0; i < b.N; i++ {
		sets := eval.BuildQuerySets(s.pipe.World, s.pipe.Log, eval.SetSizes{PerCategory: 25, Top: 60})
		if len(sets) != 6 {
			b.Fatal("bad set count")
		}
	}
}

func BenchmarkTables2to7Examples(b *testing.B) {
	s := state(b)
	queries := []string{"49ers", "bluetooth speakers", "dow futures", "diabetes", "world war i", "sarah palin"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			eval.RunExampleTable(s.pipe.Detector, s.pipe.World, q, 3)
		}
	}
}

func BenchmarkTable8AnsweredRate(b *testing.B) {
	s := state(b)
	var rows []eval.Table8Row
	for i := 0; i < b.N; i++ {
		rows = eval.RunTable8(s.pipe.Detector, s.sets)
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1] // top 250
		b.ReportMetric(last.Baseline, "baseline-rate")
		b.ReportMetric(last.ESharp, "esharp-rate")
	}
}

func BenchmarkTable9Resources(b *testing.B) {
	s := state(b)
	samples := []string{"49ers", "diabetes", "nfl"}
	for i := 0; i < b.N; i++ {
		rows := eval.RunTable9(s.pipe, samples)
		if len(rows) == 0 {
			b.Fatal("no stats")
		}
	}
}

// --- Figures ---

func BenchmarkFigure5Convergence(b *testing.B) {
	s := state(b)
	ig := s.pipe.Graph.Discretize(20)
	var res *community.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = community.DetectParallel(ig, community.DefaultOptions())
	}
	b.ReportMetric(float64(len(res.Iterations)-1), "iterations")
	b.ReportMetric(float64(res.NumCommunities), "communities")
}

func BenchmarkFigure6SizeDistribution(b *testing.B) {
	s := state(b)
	for i := 0; i < b.N; i++ {
		h := s.pipe.Clustering.SizeHistogram()
		if h[0]+h[1]+h[2]+h[3] == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkFigure7Neighborhood(b *testing.B) {
	s := state(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure7(s.pipe.Detector, "49ers", 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Coverage(b *testing.B) {
	s := state(b)
	for i := 0; i < b.N; i++ {
		curves := eval.RunFigure8(s.pipe.Detector, s.sets, 14)
		if len(curves) != len(s.sets) {
			b.Fatal("bad curves")
		}
	}
}

func BenchmarkFigure9ZScoreSweep(b *testing.B) {
	s := state(b)
	top := s.sets[len(s.sets)-1]
	thresholds := []float64{0, 0.5, 1, 1.5, 2}
	var pts []eval.ZSweepPoint
	for i := 0; i < b.N; i++ {
		pts = eval.RunFigure9(s.pipe, top, thresholds)
	}
	if len(pts) > 0 {
		b.ReportMetric(pts[0].ESharpAvg, "esharp-avg-at-z0")
		b.ReportMetric(pts[0].BaselineAvg, "baseline-avg-at-z0")
	}
}

func BenchmarkFigure10Impurity(b *testing.B) {
	s := state(b)
	study := crowd.NewStudy(s.pipe.World, crowd.DefaultConfig())
	var curves []eval.ImpurityCurve
	for i := 0; i < b.N; i++ {
		curves = eval.RunFigure10(s.pipe, study, s.sets[:1], []float64{0, 1}, 10)
	}
	if len(curves) > 0 && len(curves[0].ESharp) > 0 {
		b.ReportMetric(curves[0].ESharp[0].Impurity, "esharp-impurity")
		b.ReportMetric(curves[0].Baseline[0].Impurity, "baseline-impurity")
	}
}

// --- Ablations (design decisions called out in DESIGN.md) ---

// BenchmarkAblationJoinStrategy compares the two physical join plans of
// Section 4.2.3 on the clustering workload's heaviest join shape.
func BenchmarkAblationJoinStrategy(b *testing.B) {
	s := state(b)
	ig := s.pipe.Graph.Discretize(20)
	for _, tc := range []struct {
		name     string
		strategy relops.JoinStrategy
	}{{"replicated", relops.ReplicatedJoin}, {"partitioned", relops.PartitionedJoin}} {
		b.Run(tc.name, func(b *testing.B) {
			opt := community.DefaultOptions()
			opt.SQLJoin = tc.strategy
			for i := 0; i < b.N; i++ {
				if _, err := community.DetectSQL(ig, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBackends compares all clustering implementations on
// the same world-derived graph.
func BenchmarkAblationBackends(b *testing.B) {
	s := state(b)
	ig := s.pipe.Graph.Discretize(20)
	opt := community.DefaultOptions()
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			community.DetectParallel(ig, opt)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			community.DetectSequential(ig, opt)
		}
	})
	b.Run("louvain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			community.DetectLouvain(ig, opt)
		}
	})
	b.Run("sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := community.DetectSQL(ig, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMetric compares the two step-2 closeness metrics
// (prose ΔMod vs literal-SQL edge weight).
func BenchmarkAblationMetric(b *testing.B) {
	s := state(b)
	ig := s.pipe.Graph.Discretize(20)
	for _, tc := range []struct {
		name   string
		metric community.Metric
	}{{"delta-mod", community.MetricDeltaMod}, {"edge-weight", community.MetricEdgeWeight}} {
		b.Run(tc.name, func(b *testing.B) {
			opt := community.DefaultOptions()
			opt.Metric = tc.metric
			var res *community.Result
			for i := 0; i < b.N; i++ {
				res = community.DetectParallel(ig, opt)
			}
			b.ReportMetric(res.Modularity, "modularity")
			b.ReportMetric(float64(res.NumCommunities), "communities")
		})
	}
}

// BenchmarkAblationClusterFilter measures Pal & Counts' optional
// filtering step, which the paper discarded as expensive and
// recall-hostile.
func BenchmarkAblationClusterFilter(b *testing.B) {
	s := state(b)
	for _, tc := range []struct {
		name   string
		enable bool
	}{{"off", false}, {"on", true}} {
		b.Run(tc.name, func(b *testing.B) {
			params := expertise.DefaultParams()
			params.ClusterFilter = tc.enable
			det := expertise.New(s.pipe.Corpus, params)
			var n int
			for i := 0; i < b.N; i++ {
				n = len(det.Search("49ers"))
			}
			b.ReportMetric(float64(n), "experts")
		})
	}
}

// BenchmarkAblationExpansionTerms sweeps the expansion budget: 0 terms
// degenerates to the baseline, larger budgets trade latency for recall.
func BenchmarkAblationExpansionTerms(b *testing.B) {
	s := state(b)
	for _, terms := range []int{1, 3, 5, 10, 20} {
		b.Run(fmt.Sprintf("terms=%d", terms), func(b *testing.B) {
			cfg := s.pipe.Cfg.Online
			cfg.MaxExpansionTerms = terms
			det := core.NewDetector(s.pipe.Collection, s.pipe.Corpus, cfg)
			var n int
			for i := 0; i < b.N; i++ {
				results, _ := det.Search("49ers schedule")
				n = len(results)
			}
			b.ReportMetric(float64(n), "experts")
		})
	}
}

// --- Serving throughput (internal/serve) ---

// serveQueryPool returns the load-generator query mix: every query of
// every evaluation set, so the workload spans answered, expanded and
// unanswerable queries alike.
func serveQueryPool(s *benchState) []string {
	var pool []string
	for _, set := range s.sets {
		pool = append(pool, set.Queries...)
	}
	return pool
}

// benchServeQPS drives one server configuration and reports achieved
// QPS plus the cache hit rate. The server's detector runs with
// MatchWorkers=1: the load generator supplies request-level
// parallelism, so per-query fan-out would only oversubscribe.
func benchServeQPS(b *testing.B, workers int, cfg serve.Config, warm bool) {
	s := state(b)
	pool := serveQueryPool(s)
	online := s.pipe.Cfg.Online
	online.MatchWorkers = 1
	srv := serve.New(core.NewDetector(s.pipe.Collection, s.pipe.Corpus, online), cfg)
	total := 2 * len(pool)
	if warm {
		// Prime the cache so the measured run is all hits.
		serve.RunLoad(srv, serve.LoadConfig{Queries: pool, Total: len(pool), Workers: workers})
	}
	b.ResetTimer()
	var res serve.LoadResult
	for i := 0; i < b.N; i++ {
		res = serve.RunLoad(srv, serve.LoadConfig{Queries: pool, Total: total, Workers: workers})
	}
	b.ReportMetric(res.QPS, "qps")
	b.ReportMetric(float64(res.Stats.CacheHits)/float64(res.Queries), "hit-rate")
}

func BenchmarkServeQPSSequentialCold(b *testing.B) {
	benchServeQPS(b, 1, serve.Config{CacheSize: 0}, false)
}

func BenchmarkServeQPSParallelCold(b *testing.B) {
	benchServeQPS(b, runtime.GOMAXPROCS(0), serve.Config{CacheSize: 0}, false)
}

func BenchmarkServeQPSSequentialWarm(b *testing.B) {
	benchServeQPS(b, 1, serve.DefaultConfig(), true)
}

func BenchmarkServeQPSParallelWarm(b *testing.B) {
	benchServeQPS(b, runtime.GOMAXPROCS(0), serve.DefaultConfig(), true)
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkOnlineSearchBaseline(b *testing.B) {
	s := state(b)
	for i := 0; i < b.N; i++ {
		s.pipe.Detector.SearchBaseline("49ers")
	}
}

func BenchmarkOnlineSearchESharp(b *testing.B) {
	s := state(b)
	for i := 0; i < b.N; i++ {
		s.pipe.Detector.Search("49ers")
	}
}

func BenchmarkOfflineGraphBuild(b *testing.B) {
	s := state(b)
	cfg := simgraph.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simgraph.Build(s.pipe.Log, cfg)
	}
}

func BenchmarkOfflineAggregation(b *testing.B) {
	w := world.Build(world.TinyConfig())
	recs := querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		querylog.AggregateRecords(recs, 5)
	}
}

func BenchmarkEndToEndPipeline(b *testing.B) {
	cfg := core.TinyPipelineConfig()
	cfg.Log.Events = 20_000
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildPipeline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMatchMode compares the paper's conservative exact
// domain matching against the relaxed phrase/AND modes, reporting the
// answered-rate each achieves on the Top 250 set.
func BenchmarkAblationMatchMode(b *testing.B) {
	s := state(b)
	top := s.sets[len(s.sets)-1]
	for _, tc := range []struct {
		name string
		mode domains.MatchMode
	}{{"exact", domains.MatchExact}, {"phrase", domains.MatchPhrase}, {"and", domains.MatchAND}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := s.pipe.Cfg.Online
			cfg.Match = tc.mode
			det := core.NewDetector(s.pipe.Collection, s.pipe.Corpus, cfg)
			var answered int
			for i := 0; i < b.N; i++ {
				answered = 0
				for _, q := range top.Queries {
					if r, _ := det.Search(q); len(r) > 0 {
						answered++
					}
				}
			}
			b.ReportMetric(float64(answered)/float64(top.Size()), "answered-rate")
		})
	}
}

// BenchmarkWeeklyRefresh measures the paper's weekly offline refresh:
// decay the old log, merge a new week, rebuild graph + clustering +
// collection.
func BenchmarkWeeklyRefresh(b *testing.B) {
	cfg := core.TinyPipelineConfig()
	cfg.Log.Events = 20_000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := core.BuildPipeline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		refresh := core.RefreshConfig{Log: cfg.Log, Decay: 0.5}
		refresh.Log.Seed = uint64(1000 + i)
		b.StartTimer()
		if err := p.Refresh(refresh); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDomainStorePersistence measures the binary store round-trip
// (the paper keeps its ~100 MB collection in SQL Server).
func BenchmarkDomainStorePersistence(b *testing.B) {
	s := state(b)
	path := b.TempDir() + "/domains.bin"
	var bytes int64
	for i := 0; i < b.N; i++ {
		n, err := s.pipe.Collection.Save(path)
		if err != nil {
			b.Fatal(err)
		}
		bytes = n
		if _, err := domains.Load(path); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bytes), "store-bytes")
}

// BenchmarkAblationFeatureSet compares the paper's production feature
// set (TS/MI/RI) against the extended Pal & Counts set it simplified
// away (adding hashtag ratio, graph influence and average retweets).
func BenchmarkAblationFeatureSet(b *testing.B) {
	s := state(b)
	for _, tc := range []struct {
		name   string
		params expertise.Params
	}{{"production", expertise.DefaultParams()}, {"extended", expertise.ExtendedParams()}} {
		b.Run(tc.name, func(b *testing.B) {
			det := expertise.New(s.pipe.Corpus, tc.params)
			var n int
			for i := 0; i < b.N; i++ {
				n = len(det.Search("49ers"))
			}
			b.ReportMetric(float64(n), "experts")
		})
	}
}
