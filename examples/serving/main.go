// Serving: drive the online stage the way production traffic would.
// It builds the miniature pipeline, wraps it in a serve.Server (shared
// read-only index, LRU result cache) and replays a mixed query workload
// through the load generator — first cold and sequential, then warm and
// concurrent — printing the achieved QPS and cache hit rates.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/serve"
)

func main() {
	pipeline, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	sets := eval.BuildQuerySets(pipeline.World, pipeline.Log,
		eval.SetSizes{PerCategory: 25, Top: 60})
	var pool []string
	for _, set := range sets {
		pool = append(pool, set.Queries...)
	}
	fmt.Printf("serving over %d domains, %d tweets; workload of %d distinct queries\n\n",
		pipeline.Collection.NumDomains(), pipeline.Corpus.NumTweets(), len(pool))

	// Request-level concurrency supplies the parallelism, so the
	// server's detector matches sequentially within each query.
	online := pipeline.Cfg.Online
	online.MatchWorkers = 1
	detector := core.NewDetector(pipeline.Collection, pipeline.Corpus, online)
	srv := serve.New(detector, serve.DefaultConfig())
	workers := runtime.GOMAXPROCS(0)
	for _, run := range []struct {
		name string
		cfg  serve.LoadConfig
	}{
		{"cold sequential", serve.LoadConfig{Queries: pool, Total: len(pool), Workers: 1, BaselineEvery: 5}},
		{"warm sequential", serve.LoadConfig{Queries: pool, Total: 2 * len(pool), Workers: 1, BaselineEvery: 5}},
		{fmt.Sprintf("warm x%d workers", workers), serve.LoadConfig{Queries: pool, Total: 2 * len(pool), Workers: workers, BaselineEvery: 5}},
	} {
		res := serve.RunLoad(srv, run.cfg)
		fmt.Printf("%-18s %6d queries in %8v  %9.0f qps  answered=%d  cache hits/misses=%d/%d\n",
			run.name, res.Queries, res.Duration.Round(0), res.QPS,
			res.Answered, res.Stats.CacheHits, res.Stats.CacheMisses)
	}

	st := srv.Stats()
	fmt.Printf("\ncache holds %d entries after the runs\n", st.CacheEntries)
	experts := srv.Search("49ers")
	if len(experts) == 0 {
		fmt.Printf("spot check %q: no experts found\n", "49ers")
		return
	}
	fmt.Printf("spot check %q: %d experts, top hit @%s\n",
		"49ers", len(experts), pipeline.World.User(experts[0].User).ScreenName)
}
