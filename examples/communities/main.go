// Communities: the clustering layer on its own. Builds a small graph
// with planted structure and runs all four detectors — the paper's
// parallel algorithm (in-memory and on the relational engine), Newman's
// sequential greedy, and Louvain — comparing partitions, modularity and
// convergence.
package main

import (
	"fmt"
	"log"

	"repro/internal/community"
	"repro/internal/simgraph"
)

func main() {
	// A graph with four planted communities: tight 5-cliques bridged by
	// weak edges, like topics connected through portal sites.
	var labels []string
	var edges []simgraph.Edge
	const k, size = 4, 5
	for c := 0; c < k; c++ {
		for i := 0; i < size; i++ {
			labels = append(labels, fmt.Sprintf("c%d-n%d", c, i))
		}
		base := int32(c * size)
		for i := int32(0); i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, simgraph.Edge{A: base + i, B: base + j, Weight: 1.0})
			}
		}
		if c > 0 {
			edges = append(edges, simgraph.Edge{A: base - 1, B: base, Weight: 0.1})
		}
	}
	g, err := simgraph.FromEdges(labels, edges)
	if err != nil {
		log.Fatal(err)
	}
	ig := g.Discretize(10)
	fmt.Printf("graph: %d vertices, %d edges, %d units\n\n",
		ig.NumVertices(), ig.NumEdges(), ig.TotalUnits())

	opt := community.DefaultOptions()

	show := func(name string, res *community.Result) {
		fmt.Printf("%-22s communities=%d modularity=%.4f iterations=%d\n",
			name, res.NumCommunities, res.Modularity, len(res.Iterations)-1)
	}

	parallel := community.DetectParallel(ig, opt)
	show("parallel (paper)", parallel)

	sql, err := community.DetectSQL(ig, opt)
	if err != nil {
		log.Fatal(err)
	}
	show("parallel (SQL engine)", sql)

	agree := true
	for v := range parallel.Labels {
		if parallel.Labels[v] != sql.Labels[v] {
			agree = false
			break
		}
	}
	fmt.Printf("in-memory and SQL backends agree: %v\n\n", agree)

	show("sequential (Newman)", community.DetectSequential(ig, opt))
	show("louvain (future work)", community.DetectLouvain(ig, opt))

	fmt.Println("\nparallel convergence trace (Figure 5 shape):")
	for _, it := range parallel.Iterations {
		fmt.Printf("  iteration %d: %d communities (Q=%.4f)\n",
			it.Iteration, it.Communities, it.Modularity)
	}

	fmt.Println("\nfinal communities:")
	for i, members := range parallel.Members() {
		fmt.Printf("  community %d:", i)
		for _, v := range members {
			fmt.Printf(" %s", ig.Term(v))
		}
		fmt.Println()
	}
}
