// Quickstart: the smallest end-to-end e# run. It builds a miniature
// synthetic world, mines expertise domains from its click log, and asks
// one question — who are the experts on the 49ers? — with and without
// query expansion.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// 1. Build everything from one config: world, click log, similarity
	//    graph, domain collection, tweet corpus, online detector.
	pipeline, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline stage ready: %d domains mined from %d queries\n\n",
		pipeline.Collection.NumDomains(), pipeline.Log.NumQueries())

	// 2. Baseline: the Pal & Counts detector on the literal query.
	query := "49ers"
	baseline := pipeline.Detector.SearchBaseline(query)
	fmt.Printf("baseline found %d experts for %q\n", len(baseline), query)

	// 3. e#: expansion through the domain collection, then one ranking
	//    pass over the unioned matches.
	results, trace := pipeline.Detector.Search(query)
	fmt.Printf("e# expanded to %v\n", trace.Expansion)
	fmt.Printf("e# found %d experts over %d matched posts:\n",
		len(results), trace.MatchedTweets)
	for i, e := range results {
		if i == 5 {
			break
		}
		u := pipeline.World.User(e.User)
		fmt.Printf("  %d. @%s (z=%+.2f, %d followers) — %s\n",
			i+1, u.ScreenName, e.Score, u.Followers, u.Description)
	}
}
