// Gateway: drive the HTTP front door end to end inside one process.
// It builds the miniature pipeline, shards it behind a
// serve.Server-wrapped scatter-gather detector, mounts the
// internal/gateway HTTP/JSON service on a loopback listener, and then
// plays three clients against it over real HTTP: a reader issuing
// budgeted searches, a throttled client tripping the token bucket, and
// an operator scraping the admin snapshot. Every refusal rung of the
// front door — 401, 403, 429, 400 — is demonstrated with live
// requests, and the final exchange shows a warm cache hit answering
// under a budget that would be impossible cold.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/gateway"
	"repro/internal/serve"
	"repro/internal/shard"
)

func request(method, url, token, body string, hdr map[string]string) (int, string) {
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func main() {
	pipeline, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	sets := eval.BuildQuerySets(pipeline.World, pipeline.Log,
		eval.SetSizes{PerCategory: 25, Top: 60})
	online := pipeline.Cfg.Online
	online.MatchWorkers = 1

	router := shard.New(pipeline.Corpus, shard.Config{Shards: 2})
	defer router.Close()
	detector := core.NewShardedLiveDetector(pipeline.Collection, router, online)
	srv := serve.New(detector, serve.DefaultConfig())

	tokens, err := gateway.ParseTokens("reader:::,throttled:0.1:2:,ops::::admin")
	if err != nil {
		log.Fatal(err)
	}
	gw, err := gateway.New(gateway.Config{Serve: srv, Tokens: tokens})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: gw}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("front door on %s — 2 shards, %d domains, %d tweets\n\n",
		base, pipeline.Collection.NumDomains(), pipeline.Corpus.NumTweets())

	// A reader works through real evaluation queries with a budget.
	query := sets[0].Queries[0]
	body, _ := json.Marshal(map[string]string{"query": query})
	status, resp := request(http.MethodPost, base+"/v1/search", "reader", string(body),
		map[string]string{"X-Budget-Ms": "2000"})
	var decoded struct {
		Experts []expertise.Expert `json:"experts"`
	}
	if err := json.Unmarshal([]byte(resp), &decoded); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader  POST /v1/search %-28q → %d, %d experts\n", query, status, len(decoded.Experts))
	if len(decoded.Experts) > 0 {
		e := decoded.Experts[0]
		fmt.Printf("        top expert: user %d, score %.4f\n", e.User, e.Score)
	}

	// The same query again: a cache hit, fast enough for a budget that
	// could never be met cold.
	t0 := time.Now()
	status, _ = request(http.MethodPost, base+"/v1/search", "reader", string(body),
		map[string]string{"X-Budget-Ms": "50"})
	fmt.Printf("reader  same query, 50ms budget        → %d in %v (warm hit)\n\n", status, time.Since(t0).Round(time.Microsecond))

	// Every rung of the refusal ladder, demonstrated live.
	status, _ = request(http.MethodPost, base+"/v1/search", "", string(body), nil)
	fmt.Printf("anon    no token                       → %d\n", status)
	status, _ = request(http.MethodGet, base+"/v1/admin/stats", "reader", "", nil)
	fmt.Printf("reader  GET /v1/admin/stats            → %d (not an admin)\n", status)
	status, _ = request(http.MethodPost, base+"/v1/search", "reader", `{"query":"   "}`, nil)
	fmt.Printf("reader  blank query                    → %d\n", status)
	var limited int
	for i := 0; i < 5; i++ {
		status, _ = request(http.MethodPost, base+"/v1/search", "throttled", string(body), nil)
		if status == http.StatusTooManyRequests {
			limited++
		}
	}
	fmt.Printf("throttled 5 rapid queries              → %d rate-limited (burst 2, 0.1/s)\n\n", limited)

	// The operator reads the combined accounting of both layers.
	status, resp = request(http.MethodGet, base+"/v1/admin/stats", "ops", "", nil)
	var snap struct {
		Serve   serve.Stats   `json:"serve"`
		Gateway gateway.Stats `json:"gateway"`
	}
	if err := json.Unmarshal([]byte(resp), &snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ops     GET /v1/admin/stats            → %d\n", status)
	fmt.Printf("        gateway: %d requests = %d ok + %d unauthorized + %d forbidden + %d rate-limited + %d bad\n",
		snap.Gateway.Requests, snap.Gateway.OK, snap.Gateway.Unauthorized,
		snap.Gateway.Forbidden, snap.Gateway.RateLimited, snap.Gateway.BadRequest)
	fmt.Printf("        serve:   %d queries, %d hits, %d misses\n",
		snap.Serve.Queries, snap.Serve.CacheHits, snap.Serve.CacheMisses)
}
