// Streaming: drive the live ingestion subsystem the way the paper's
// deployment would — tweets keep arriving while expert queries keep
// being answered. It builds the miniature pipeline, wraps the corpus
// in a streaming index (internal/ingest) behind a live detector and an
// epoch-aware caching server, replays a mixed read/write workload, and
// finally quiesces and spot-checks that the live index agrees with a
// cold detector rebuilt over the same posts.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/serve"
)

func main() {
	pipeline, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	sets := eval.BuildQuerySets(pipeline.World, pipeline.Log,
		eval.SetSizes{PerCategory: 25, Top: 60})
	var pool []string
	for _, set := range sets {
		pool = append(pool, set.Queries...)
	}

	idx := ingest.New(pipeline.Corpus, ingest.Config{SealThreshold: 128, CompactFanIn: 4})
	defer idx.Close()
	online := pipeline.Cfg.Online
	online.MatchWorkers = 1 // request-level concurrency supplies the parallelism
	live := core.NewLiveDetector(pipeline.Collection, idx, online)
	srv := serve.New(live, serve.DefaultConfig())

	fmt.Printf("live index over %d base tweets, %d domains; workload of %d distinct queries\n\n",
		pipeline.Corpus.NumTweets(), pipeline.Collection.NumDomains(), len(pool))

	const spot = "49ers"
	before := srv.Search(spot)
	fmt.Printf("epoch %-4d  %q -> %d experts (pre-ingest)\n", live.Epoch(), spot, len(before))

	workers := runtime.GOMAXPROCS(0)
	res := serve.RunMixedLoad(srv, idx, serve.MixedLoadConfig{
		Queries:       pool,
		Searches:      4 * len(pool),
		SearchWorkers: workers,
		Ingests:       1500,
		IngestWorkers: 2,
		BaselineEvery: 5,
		Seed:          23,
	})
	st := idx.Stats()
	fmt.Printf("\nmixed load: %d searches (%.0f qps) alongside %d ingests (%.0f posts/s) in %v\n",
		res.Searches, res.SearchQPS, res.Ingested, res.IngestPerSec, res.Duration.Round(0))
	fmt.Printf("epochs %d -> %d; %d seals, %d compactions, %d sealed segments (+%d-tweet tail)\n",
		res.StartEpoch, res.EndEpoch, st.Seals, st.Compactions, st.Segments, st.ActiveLen)
	fmt.Printf("cache: hits=%d misses=%d coalesced=%d invalidations=%d\n",
		res.Stats.CacheHits, res.Stats.CacheMisses, res.Stats.Coalesced, res.Stats.Invalidations)

	after := srv.Search(spot)
	fmt.Printf("\nepoch %-4d  %q -> %d experts (post-ingest)\n", live.Epoch(), spot, len(after))

	// Quiesce and verify: the live index must agree with a cold
	// detector over base + everything that was ingested.
	idx.Quiesce()
	snap := idx.Snapshot()
	all := append([]microblog.Tweet(nil), pipeline.Corpus.Tweets()...)
	for gid := pipeline.Corpus.NumTweets(); gid < snap.NumTweets(); gid++ {
		all = append(all, *snap.Tweet(microblog.TweetID(gid)))
	}
	cold := core.NewDetector(pipeline.Collection, microblog.FromTweets(pipeline.World, all), online)
	mismatches := 0
	for _, q := range pool {
		liveRes, _ := live.Search(q)
		coldRes, _ := cold.Search(q)
		if len(liveRes) != len(coldRes) {
			mismatches++
			continue
		}
		for i := range coldRes {
			if liveRes[i] != coldRes[i] {
				mismatches++
				break
			}
		}
	}
	fmt.Printf("quiesced equivalence over %d queries: %d mismatches vs cold rebuild\n",
		len(pool), mismatches)
	if len(after) > 0 {
		fmt.Printf("top %q expert: @%s\n", spot,
			pipeline.World.User(after[0].User).ScreenName)
	}
}
