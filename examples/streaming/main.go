// Streaming: drive the live ingestion subsystem the way the paper's
// deployment would — tweets keep arriving while expert queries keep
// being answered. It builds the miniature pipeline, wraps the corpus
// in a streaming index behind a live detector and an epoch-aware
// caching server, replays a mixed read/write workload, and finally
// quiesces and spot-checks that the live index agrees with a cold
// detector rebuilt over the same posts.
//
// With -shards N (N > 1) the stream is hash-partitioned by author
// across N independent indexes behind a scatter-gather
// core.ShardedLiveDetector (internal/shard), and the serving cache
// invalidates on the vector of per-shard epochs instead of a single
// counter. With -remote host:port,... the shards live in other
// processes (cmd/shardd, one per partition, started with matching
// -shard/-of flags) and the scatter-gather runs over the wire protocol
// of internal/transport — searches, denominator fetches, routed
// ingest and the final quiesce all cross TCP.
//
// With -replicas R (R > 1) every shard becomes a replica.Set: one
// primary plus R-1 followers holding identical content, writes
// replicated synchronously, reads rotated across the replicas and
// failing over on error instead of degrading to partial results. In
// the -remote form, replicas of one shard are separated by '|' inside
// the shard's comma-separated slot — e.g.
//
//	shardd -addr :7101 -shard 0 -of 2 &
//	shardd -addr :7111 -shard 0 -of 2 &
//	shardd -addr :7102 -shard 1 -of 2 &
//	shardd -addr :7112 -shard 1 -of 2 &
//	go run ./examples/streaming -remote "localhost:7101|localhost:7111,localhost:7102|localhost:7112"
//
// wires a 2-shard × 2-replica deployment where the first address of
// each group is the shard's primary. The equivalence check is the
// same in every topology: the live index must agree with a cold
// rebuild bit for bit, which for -remote means the wire — and for
// replicated topologies the replication fan-out — is held to the bar.
//
// With -reshard the run goes one further: it starts on 2 in-process
// shards and live-migrates to 4 *while the mixed load is running* — a
// shard.Migration streams every moving author's post log across,
// catch-up rounds absorb the writes that land mid-drain, and the
// routing table swaps atomically once source and destination epochs
// agree. Queries never pause, writes pause only for the final residue
// pass, and the closing equivalence check runs against the 4-shard
// deployment — the migration itself is held to the bit-identical bar.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"

	"slices"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/world"
)

// clusterSink adapts a shard.Cluster (whose Ingest can fail — remote
// shards sit behind a transport) to the infallible serve.Sink surface
// the load generator drives; a failed ingest is simply dropped, the
// fail-fast policy a demo load generator wants.
type clusterSink struct{ c *shard.Cluster }

func (s clusterSink) Ingest(p microblog.Post) microblog.TweetID {
	id, err := s.c.Ingest(p)
	if err != nil {
		return -1
	}
	return id
}
func (s clusterSink) World() *world.World { return s.c.World() }
func (s clusterSink) Epoch() uint64       { return s.c.Epoch() }

// fetchAdmin GETs one admin endpoint and returns its body, fatally
// ending the smoke run on any transport or status failure.
func fetchAdmin(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("admin smoke: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("admin smoke: read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("admin smoke: %s answered %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func main() {
	shards := flag.Int("shards", 1, "number of author-partitioned shards (1 = single-node live index)")
	replicas := flag.Int("replicas", 1, "replicas per shard (primary + followers; 1 = unreplicated)")
	remote := flag.String("remote", "", "comma-separated shardd address groups, '|'-separated replicas within a group; scatter-gather over the wire (overrides -shards)")
	admin := flag.String("admin", "", "optional host:port for the coordinator's admin HTTP plane (/metrics, /healthz, /stats, /debug/pprof/); the run smoke-checks it live")
	reshard := flag.Bool("reshard", false, "live-migrate the in-process topology from 2 to 4 shards while the mixed load runs (incompatible with -remote and -replicas)")
	flag.Parse()

	pipeline, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	sets := eval.BuildQuerySets(pipeline.World, pipeline.Log,
		eval.SetSizes{PerCategory: 25, Top: 60})
	var pool []string
	for _, set := range sets {
		pool = append(pool, set.Queries...)
	}

	online := pipeline.Cfg.Online
	online.MatchWorkers = 1 // request-level concurrency supplies the parallelism
	icfg := ingest.Config{SealThreshold: 128, CompactFanIn: 4}

	// One registry spans the whole coordinator: detector spans, serving
	// counters, client wire accounting and (for in-process topologies)
	// ingest accounting all land in the same /metrics namespace.
	var reg *obs.Registry
	if *admin != "" {
		reg = obs.NewRegistry()
		online.Obs = reg
		icfg.Obs = reg
	}

	// Wire the chosen topology: one streaming index, or a router over N
	// of them. Both sides expose the same Backend + Sink surfaces, so
	// the serving and load-generation code below is topology-blind.
	var (
		backend serve.Backend
		sink    serve.Sink
		collect func() []microblog.Tweet // ingested tweets, for the cold rebuild
		// remotePrimaries, in -remote mode, are the per-group primary
		// clients — the smoke check below proves their epoch sampling
		// rides the push subscription (zero probe round trips after
		// warmup) instead of paying one RTT per serve-cache lookup.
		remotePrimaries []*transport.RemoteShard
		// mig, with -reshard, is the live 2→4 migration the mixed load
		// runs against; it doubles as the write sink so every post routes
		// through the versioned table.
		mig *shard.Migration
	)
	if *reshard {
		if *remote != "" || *replicas > 1 {
			log.Fatal("-reshard drives the in-process sharded topology; drop -remote/-replicas")
		}
		*shards = 2
		src := shard.New(pipeline.Corpus, shard.Config{Shards: 2, Ingest: icfg})
		defer src.Close()
		dst := shard.New(pipeline.Corpus, shard.Config{Shards: 4, Ingest: icfg})
		defer dst.Close()
		det := core.NewShardedLiveDetectorOver(pipeline.Collection, src.Cluster(), online)
		m, err := shard.NewMigration(src.Cluster(), dst.Cluster(), shard.MigrationConfig{
			Cutover: func(to *shard.Cluster) { det.SwapCluster(to) },
			Obs:     reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		det.AttachMigration(m)
		mig = m
		backend = det
		sink = m
		// After cutover the destination holds every ingested post — the
		// drained pre-cutover stream plus everything routed there since.
		collect = func() []microblog.Tweet {
			dst.Quiesce()
			var all []microblog.Tweet
			for i := 0; i < dst.NumShards(); i++ {
				snap := dst.Shard(i).Snapshot()
				for gid := dst.Shard(i).Base().NumTweets(); gid < snap.NumTweets(); gid++ {
					all = append(all, *snap.Tweet(microblog.TweetID(gid)))
				}
			}
			return all
		}
	} else if *remote != "" {
		groups := strings.Split(*remote, ",")
		n := len(groups)
		*shards = n
		// One counting pass over the base gives every partition's size
		// (no need to materialize the per-shard corpora the shardd
		// processes themselves hold).
		partSize := make([]int, n)
		for _, tw := range pipeline.Corpus.Tweets() {
			partSize[shard.ShardOf(tw.Author, n)]++
		}
		backends := make([]shard.Backend, n)
		primaries := make([]*transport.RemoteShard, n)
		maxReplicas := 1
		for i, group := range groups {
			addrs := strings.Split(group, "|")
			// The handshake proves each process serves the partition this
			// coordinator expects, over the identical deterministic base —
			// a mismatched shardd (or replica) would silently break the
			// equivalence check below, so fail here instead.
			ccfg := transport.DefaultClientConfig()
			ccfg.Obs = reg
			reps, err := transport.DialReplicas(addrs, i, n,
				len(pipeline.World.Users), partSize[i], ccfg)
			if err != nil {
				log.Fatal(err)
			}
			primaries[i] = reps[0].(*transport.RemoteShard)
			if len(reps) == 1 {
				backends[i] = reps[0]
			} else {
				rcfg := replica.DefaultConfig()
				rcfg.Obs = reg
				set, err := replica.NewSet(reps, rcfg)
				if err != nil {
					log.Fatal(err)
				}
				backends[i] = set
			}
			maxReplicas = max(maxReplicas, len(reps))
		}
		*replicas = maxReplicas
		remotePrimaries = primaries
		cluster := shard.NewCluster(pipeline.World, backends...)
		defer cluster.Close()
		backend = core.NewShardedLiveDetectorOver(pipeline.Collection, cluster, online)
		sink = clusterSink{cluster}
		collect = func() []microblog.Tweet {
			if err := cluster.Quiesce(); err != nil {
				log.Fatal(err)
			}
			// Writes land on every replica; the primary is the durability
			// contract, so the cold rebuild pages its content back.
			var all []microblog.Tweet
			for _, c := range primaries {
				posts, err := c.DumpIngested()
				if err != nil {
					log.Fatal(err)
				}
				for _, p := range posts {
					all = append(all, microblog.MakeTweet(p))
				}
			}
			return all
		}
	} else if *replicas > 1 {
		// In-process replicated topology: every shard is a replica.Set of
		// R identical indexes over the shard's base partition — writes
		// fan out to all of them, reads rotate, and the logical write
		// epoch (not any replica's index epoch) identifies the view to
		// the serving cache.
		n := max(*shards, 1)
		*shards = n
		backends := make([]shard.Backend, n)
		primaries := make([]*ingest.Index, n)
		for i := 0; i < n; i++ {
			part := shard.Partition(pipeline.Corpus, i, n)
			members := make([]shard.Backend, *replicas)
			for j := range members {
				idx := ingest.New(part, icfg)
				if j == 0 {
					primaries[i] = idx
				}
				members[j] = shard.NewLocal(idx)
			}
			rcfg := replica.DefaultConfig()
			rcfg.Obs = reg
			set, err := replica.NewSet(members, rcfg)
			if err != nil {
				log.Fatal(err)
			}
			backends[i] = set
		}
		cluster := shard.NewCluster(pipeline.World, backends...)
		defer cluster.Close()
		backend = core.NewShardedLiveDetectorOver(pipeline.Collection, cluster, online)
		sink = clusterSink{cluster}
		collect = func() []microblog.Tweet {
			if err := cluster.Quiesce(); err != nil {
				log.Fatal(err)
			}
			var all []microblog.Tweet
			for i := 0; i < n; i++ {
				snap := primaries[i].Snapshot()
				for gid := primaries[i].Base().NumTweets(); gid < snap.NumTweets(); gid++ {
					all = append(all, *snap.Tweet(microblog.TweetID(gid)))
				}
			}
			return all
		}
	} else if *shards > 1 {
		r := shard.New(pipeline.Corpus, shard.Config{Shards: *shards, Ingest: icfg})
		defer r.Close()
		backend = core.NewShardedLiveDetector(pipeline.Collection, r, online)
		sink = r
		collect = func() []microblog.Tweet {
			r.Quiesce()
			var all []microblog.Tweet
			for i := 0; i < r.NumShards(); i++ {
				snap := r.Shard(i).Snapshot()
				for gid := r.Shard(i).Base().NumTweets(); gid < snap.NumTweets(); gid++ {
					all = append(all, *snap.Tweet(microblog.TweetID(gid)))
				}
			}
			return all
		}
	} else {
		idx := ingest.New(pipeline.Corpus, icfg)
		defer idx.Close()
		backend = core.NewLiveDetector(pipeline.Collection, idx, online)
		sink = idx
		collect = func() []microblog.Tweet {
			idx.Quiesce()
			snap := idx.Snapshot()
			var all []microblog.Tweet
			for gid := pipeline.Corpus.NumTweets(); gid < snap.NumTweets(); gid++ {
				all = append(all, *snap.Tweet(microblog.TweetID(gid)))
			}
			return all
		}
	}
	scfg := serve.DefaultConfig()
	scfg.Obs = reg
	srv := serve.New(backend, scfg)
	var adminURL string
	if *admin != "" {
		adm, err := obs.StartAdmin(*admin, obs.AdminConfig{
			Registry: reg,
			SlowLog:  srv.SlowLog(),
			Stats:    func() any { return srv.Stats() },
		})
		if err != nil {
			log.Fatal(err)
		}
		defer adm.Close()
		adminURL = "http://" + adm.Addr().String()
		fmt.Printf("admin plane on %s (/metrics /healthz /stats /debug/pprof/)\n", adminURL)
	}

	fmt.Printf("live index over %d base tweets, %d domains, %d shard(s) x %d replica(s); workload of %d distinct queries\n\n",
		pipeline.Corpus.NumTweets(), pipeline.Collection.NumDomains(), *shards, *replicas, len(pool))

	const spot = "49ers"
	before := srv.Search(spot)
	fmt.Printf("epoch %-4d  %q -> %d experts (pre-ingest)\n", backend.Epoch(), spot, len(before))

	// Warm the push subscriptions explicitly, then snapshot the epoch
	// round-trip counters: everything the mixed load does from here on
	// must learn epochs from pushed deltas alone.
	var epochRTTsWarm int64
	for _, c := range remotePrimaries {
		if _, err := c.Epoch(); err != nil {
			log.Fatal(err)
		}
	}
	for _, c := range remotePrimaries {
		epochRTTsWarm += c.EpochRTTs()
	}

	// With -reshard: seed the 2-shard deployment with live posts so the
	// drain has author logs to move, then run the migration concurrently
	// with the mixed load below — queries and writes keep flowing while
	// authors stream across.
	var migDone chan error
	if mig != nil {
		stream := microblog.NewPostStream(pipeline.World, microblog.DefaultStreamConfig(41))
		for i := 0; i < 500; i++ {
			sink.Ingest(stream.Next())
		}
		migDone = make(chan error, 1)
		go func() { migDone <- mig.Run() }()
	}

	workers := runtime.GOMAXPROCS(0)
	res := serve.RunMixedLoad(srv, sink, serve.MixedLoadConfig{
		Queries:       pool,
		Searches:      4 * len(pool),
		SearchWorkers: workers,
		Ingests:       1500,
		IngestWorkers: 2,
		BaselineEvery: 5,
		Seed:          23,
	})
	fmt.Printf("\nmixed load: %d searches (%.0f qps) alongside %d ingests (%.0f posts/s) in %v\n",
		res.Searches, res.SearchQPS, res.Ingested, res.IngestPerSec, res.Duration.Round(0))
	fmt.Printf("epoch digest %d -> %d\n", res.StartEpoch, res.EndEpoch)
	if st := srv.Stats(); st.EpochVector != nil {
		fmt.Printf("per-shard epoch vector: %v\n", st.EpochVector)
	}
	fmt.Printf("cache: hits=%d misses=%d coalesced=%d invalidations=%d\n",
		res.Stats.CacheHits, res.Stats.CacheMisses, res.Stats.Coalesced, res.Stats.Invalidations)
	if res.Stats.PartialResults > 0 || res.Stats.Uncacheable > 0 {
		fmt.Printf("degraded: partial=%d shard-errors=%d uncacheable=%d\n",
			res.Stats.PartialResults, res.Stats.ShardErrors, res.Stats.Uncacheable)
	}

	if mig != nil {
		if err := <-migDone; err != nil {
			log.Fatalf("reshard: %v", err)
		}
		st := mig.Stats()
		fmt.Printf("\nreshard: %v — routing table v%d now %d shards; %d authors moved, %d posts (%d bytes) streamed, %d catch-up rounds, %d reads in the dual-read window\n",
			st.State, st.TableVersion, st.ToShards, st.AuthorsMoving,
			st.PostsStreamed, st.BytesStreamed, st.CatchUpRounds, st.WindowHits)
	}

	after := srv.Search(spot)
	fmt.Printf("\nepoch %-4d  %q -> %d experts (post-ingest)\n", backend.Epoch(), spot, len(after))

	if remotePrimaries != nil {
		var rtts int64
		for _, c := range remotePrimaries {
			rtts += c.EpochRTTs()
		}
		fmt.Printf("push path: %d epoch-probe round trips after warmup (want 0)\n", rtts-epochRTTsWarm)
		if rtts != epochRTTsWarm {
			log.Fatalf("epoch sampling fell off the push path: %d probe round trips during the mixed load",
				rtts-epochRTTsWarm)
		}
	}

	// Admin smoke: with -admin, the plane must answer live — /metrics
	// carrying the serving rows the load just drove (and, over the wire,
	// the client RPC rows), /stats as JSON, /healthz green.
	if adminURL != "" {
		metrics := fetchAdmin(adminURL + "/metrics")
		for _, want := range []string{"serve_queries", "serve_request_ns_count"} {
			if !strings.Contains(metrics, want) {
				log.Fatalf("admin smoke: /metrics is missing %q:\n%s", want, metrics)
			}
		}
		if remotePrimaries != nil && !strings.Contains(metrics, "rpc_client_search_stats_requests") {
			log.Fatalf("admin smoke: /metrics is missing the client RPC rows:\n%s", metrics)
		}
		stats := fetchAdmin(adminURL + "/stats")
		if !strings.Contains(stats, "\"metrics\"") || !strings.Contains(stats, "\"stats\"") {
			log.Fatalf("admin smoke: /stats is missing sections:\n%s", stats)
		}
		if health := fetchAdmin(adminURL + "/healthz"); !strings.HasPrefix(health, "ok") {
			log.Fatalf("admin smoke: /healthz answered %q", health)
		}
		fmt.Printf("admin smoke: /metrics (%d rows), /stats and /healthz answered live\n",
			strings.Count(metrics, "\n"))
	}

	// Quiesce and verify: the live index — sharded or not — must agree
	// with a cold detector over base + everything that was ingested.
	all := append([]microblog.Tweet(nil), pipeline.Corpus.Tweets()...)
	all = append(all, collect()...)
	cold := core.NewDetector(pipeline.Collection, microblog.FromTweets(pipeline.World, all), online)
	mismatches := 0
	for _, q := range pool {
		liveRes, _ := backend.Search(q)
		coldRes, _ := cold.Search(q)
		if !slices.Equal(liveRes, coldRes) {
			mismatches++
		}
	}
	fmt.Printf("quiesced equivalence over %d queries: %d mismatches vs cold rebuild\n",
		len(pool), mismatches)
	if len(after) > 0 {
		fmt.Printf("top %q expert: @%s\n", spot,
			pipeline.World.User(after[0].User).ScreenName)
	}
}
