// Health: tuning the precision/recall trade-off. The paper's Figure 9
// sweeps the minimum z-score threshold; this example does the same for
// health queries ("diabetes", "asthma", ...) and prints how the result
// count and ground-truth precision move as the threshold rises.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	cfg := core.DefaultPipelineConfig()
	cfg.Log.Events = 400_000
	cfg.MinClicks = 10
	base, err := core.BuildPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{"diabetes", "asthma", "scoliosis", "bmi"}
	fmt.Println("threshold sweep over health queries (e# detector):")
	fmt.Printf("%-8s %-12s %-12s %s\n", "min z", "avg experts", "precision", "note")
	for _, z := range []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5} {
		online := cfg.Online
		online.Expertise.MinZScore = z
		det := core.NewDetector(base.Collection, base.Corpus, online)

		var total, relevant int
		for _, q := range queries {
			topic, ok := base.World.KeywordOwner(q)
			if !ok {
				continue
			}
			results, _ := det.Search(q)
			total += len(results)
			for _, e := range results {
				if base.World.IsRelevantExpert(e.User, topic) {
					relevant++
				}
			}
		}
		avg := float64(total) / float64(len(queries))
		prec := 0.0
		if total > 0 {
			prec = float64(relevant) / float64(total)
		}
		note := ""
		switch {
		case z == 0:
			note = "permissive: maximum recall"
		case avg < 1:
			note = "strict: only the strongest experts survive"
		}
		fmt.Printf("%-8.1f %-12.2f %-12.2f %s\n", z, avg, prec, note)
	}
}
