// Sports: the paper's running example. Reproduces Figure 7 (the
// communities around "49ers" and its three closest neighbors) and the
// Table 2 comparison of baseline vs e# experts, including the
// tweet-rare query "49ers schedule" where expansion makes the
// difference.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
)

func main() {
	cfg := core.DefaultPipelineConfig()
	cfg.Log.Events = 400_000 // enough for stable communities, quick to run
	cfg.MinClicks = 10
	pipeline, err := core.BuildPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 7: the 49ers community and its neighborhood.
	rep, err := eval.RunFigure7(pipeline.Detector, "49ers", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.RenderFigure7(rep))
	fmt.Println()

	// Table 2: who the two algorithms surface for "49ers".
	fmt.Print(eval.RenderExampleTable("49ers",
		eval.RunExampleTable(pipeline.Detector, pipeline.World, "49ers", 3)))
	fmt.Println()

	// The recall story: a keyword people search but rarely tweet.
	for _, q := range []string{"49ers schedule", "vernon davis", "west coast football"} {
		base := pipeline.Detector.SearchBaseline(q)
		esharp, trace := pipeline.Detector.Search(q)
		fmt.Printf("%-22q baseline=%2d experts | e#=%2d experts (via %d expansion terms)\n",
			q, len(base), len(esharp), len(trace.Expansion))
	}
}
