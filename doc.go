// Package repro is a from-scratch Go reproduction of "e#: Sharper
// Expertise Detection from Microblogs" (Sellam, Hentschel, Kandylas,
// Alonso — EDBT 2016).
//
// The library lives under internal/: the e# pipeline in internal/core
// (frozen Detector, streaming LiveDetector and scatter-gather
// ShardedLiveDetector), the live ingestion subsystem in internal/ingest
// (segmented streaming index: sealed corpus-backed segments, background
// compaction, epoch-tagged atomic snapshots), the author-partitioned
// shard router in internal/shard (N streaming indexes behind a stable
// author hash and the shard.Backend query-surface interface, per-shard
// epochs composed into a vector epoch), the cross-process wire in
// internal/transport (length-prefixed TCP protocol: ShardServer serves
// one shard, RemoteShard implements shard.Backend over it, so clusters
// mix in-process and remote shards freely), the concurrent serving
// layer in internal/serve (query front-end, epoch- and
// vector-epoch-invalidated LRU result cache with in-flight coalescing,
// partial-result surfacing, read-only and mixed read/write load
// generators), and one package per substrate (query-log synthesis,
// similarity graph, relational engine, community detection, domain
// store, microblog corpus, baseline detector, crowdsourcing
// simulation, experiment harness). Executables are cmd/esharp,
// cmd/experiments and cmd/shardd (serves one shard over TCP); runnable
// examples live in examples/ (examples/streaming drives live ingestion
// under concurrent search — single-node, sharded via -shards N, or
// against shardd processes via -remote host:port,...).
//
// ARCHITECTURE.md is the layer-by-layer tour of the whole system —
// data flow, the epoch/vector-epoch invalidation story, and the
// bit-identical equivalence invariant each layer is held to.
// BENCHMARKS.md maps every Benchmark* name to the paper table or
// serving claim it backs and records the measurement methodology; the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section and measure serving throughput
// (BenchmarkServeQPS*), internal/ingest adds BenchmarkIngest* and
// BenchmarkLiveSearch* for the streaming path, internal/shard adds
// BenchmarkLiveSearchSharded* and BenchmarkServeQPSShardedMixed* for
// the sharded path, and internal/transport adds
// BenchmarkRemoteSearchSharded* for the cross-process path. ROADMAP.md
// tracks the north star and open items, and CHANGES.md records per-PR
// measurements.
package repro
