// Package repro is a from-scratch Go reproduction of "e#: Sharper
// Expertise Detection from Microblogs" (Sellam, Hentschel, Kandylas,
// Alonso — EDBT 2016).
//
// The library lives under internal/: the e# pipeline in internal/core,
// the concurrent serving layer (query front-end, LRU result cache,
// load generator) in internal/serve, and one package per substrate
// (query-log synthesis, similarity graph, relational engine, community
// detection, domain store, microblog corpus, baseline detector,
// crowdsourcing simulation, experiment harness). Executables are
// cmd/esharp and cmd/experiments; runnable examples live in examples/.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section and measure serving throughput
// (BenchmarkServeQPS*); ROADMAP.md tracks the north star and open
// items, and CHANGES.md records per-PR measurements.
package repro
