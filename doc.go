// Package repro is a from-scratch Go reproduction of "e#: Sharper
// Expertise Detection from Microblogs" (Sellam, Hentschel, Kandylas,
// Alonso — EDBT 2016).
//
// The library lives under internal/: the e# pipeline in internal/core
// (frozen Detector and streaming LiveDetector), the live ingestion
// subsystem in internal/ingest (segmented streaming index: sealed
// corpus-backed segments, background compaction, epoch-tagged atomic
// snapshots), the concurrent serving layer in internal/serve (query
// front-end, epoch-invalidated LRU result cache with in-flight
// coalescing, read-only and mixed read/write load generators), and one
// package per substrate (query-log synthesis, similarity graph,
// relational engine, community detection, domain store, microblog
// corpus, baseline detector, crowdsourcing simulation, experiment
// harness). Executables are cmd/esharp and cmd/experiments; runnable
// examples live in examples/ (examples/streaming drives live ingestion
// under concurrent search). The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation section and measure
// serving throughput (BenchmarkServeQPS*); internal/ingest adds
// BenchmarkIngest* and BenchmarkLiveSearch* for the streaming path.
// ROADMAP.md tracks the north star and open items, and CHANGES.md
// records per-PR measurements.
package repro
