// Package repro is a from-scratch Go reproduction of "e#: Sharper
// Expertise Detection from Microblogs" (Sellam, Hentschel, Kandylas,
// Alonso — EDBT 2016).
//
// The library lives under internal/: the e# pipeline in internal/core,
// one package per substrate (query-log synthesis, similarity graph,
// relational engine, community detection, domain store, microblog
// corpus, baseline detector, crowdsourcing simulation, experiment
// harness). Executables are cmd/esharp and cmd/experiments; runnable
// examples live in examples/. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation section;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for the
// measured results.
package repro
